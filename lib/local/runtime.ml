(* Synchronous execution engine for the LOCAL model.

   In each round, every non-halted node consumes the messages sent to it in
   the previous round, updates its state, and emits new messages to
   neighbors. Messages are unbounded (standard LOCAL); the complexity
   measure is the number of rounds until every node has halted.

   Two interfaces are provided:
   - a message-passing interface ([run]) where nodes address messages to
     neighbor indices, and
   - a full-information interface ([run_full_info]) where each round every
     node sees the previous-round state of each neighbor — equivalent to
     LOCAL since messages are unbounded, and the natural way to express
     the paper's algorithms.

   Both engines step the non-halted nodes of a round IN PARALLEL across
   OCaml 5 domains ([Par]): all nodes read the same immutable snapshot
   (previous-round states / inboxes) and each writes only its own cell of
   the result arrays, so the parallel execution is faithful to the
   synchronous-round semantics by construction. Everything order-sensitive
   — message delivery, the non-neighbor check, halt bookkeeping, metrics —
   happens in a sequential merge sweep over nodes 0..n-1 after the
   parallel phase, in exactly the order the sequential engine used; with
   [~domains:1] no domain is spawned and the engine IS the sequential
   reference, which the differential tests exploit. *)

exception Round_limit_exceeded of int

type ('s, 'm) step_result = { state : 's; send : (int * 'm) list; halt : bool }

type stats = { rounds : int; messages : int; per_round : Metrics.round_record list }

let default_max_rounds = 1_000_000

(* Sorted neighbor arrays, precomputed once per run: the per-message
   destination check becomes O(log deg) instead of the former O(deg)
   [List.mem] scan of the adjacency list (O(deg^2) per node per round). *)
let neighbor_index net =
  let n = Network.n net in
  Array.init n (fun v ->
      let a = Array.of_list (Network.neighbors net v) in
      Array.sort compare a;
      a)

let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let y = a.(mid) in
    if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

(* One metrics record, appended both to the sink and to the per-run
   accumulator surfaced through [stats.per_round]. *)
let emit metrics acc ~round ~t0 ~messages ~stepped ~halted_count ~n ~sample =
  if Metrics.enabled metrics then begin
    let r =
      {
        Metrics.round;
        phase = Metrics.phase metrics;
        wall_ns = Metrics.now_ns () - t0;
        messages;
        stepped;
        halted_fraction = (if n = 0 then 1.0 else float_of_int halted_count /. float_of_int n);
        state_words = Metrics.state_words sample;
      }
    in
    Metrics.record metrics r;
    acc := r :: !acc
  end

let finish ~rounds ~messages acc = { rounds; messages; per_round = List.rev !acc }

let run ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net ~init ~step =
  let n = Network.n net in
  let nbr_index = neighbor_index net in
  let states = Array.init n init in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let inboxes : (int * 'm) list array = Array.make n [] in
  let results : ('s, 'm) step_result option array = Array.make n None in
  let round = ref 0 in
  let messages = ref 0 in
  let recs = ref [] in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    (* parallel phase: pure per-node computation against the round's
       snapshot; node [v] writes only [results.(v)] *)
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then begin
          let inbox = List.rev inboxes.(v) in
          results.(v) <- Some (step ~round:!round ~me:v states.(v) inbox)
        end);
    (* sequential merge in node order: state/halt commit, destination
       checks and message delivery — byte-identical to the sequential
       engine's interleaving *)
    let outboxes = Array.make n [] in
    let stepped = ref 0 in
    let round_msgs = ref 0 in
    for v = 0 to n - 1 do
      match results.(v) with
      | None -> ()
      | Some r ->
        results.(v) <- None;
        incr stepped;
        states.(v) <- r.state;
        if r.halt then begin
          halted.(v) <- true;
          incr halted_count
        end;
        List.iter
          (fun (target, msg) ->
            if not (mem_sorted nbr_index.(v) target) then
              invalid_arg "Runtime.run: message to non-neighbor";
            incr round_msgs;
            outboxes.(target) <- (v, msg) :: outboxes.(target))
          r.send
    done;
    messages := !messages + !round_msgs;
    Array.blit outboxes 0 inboxes 0 n;
    (* n > 0 inside the loop, so states.(0) is a valid sample *)
    emit metrics recs ~round:!round ~t0 ~messages:!round_msgs ~stepped:!stepped
      ~halted_count:!halted_count ~n ~sample:states.(0);
    incr round
  done;
  (states, finish ~rounds:!round ~messages:!messages recs)

(* Full-information rounds: each node's step sees [(neighbor, neighbor's
   state at the start of the round)]. All nodes are stepped against the
   same snapshot, faithfully modelling synchronous rounds — which is also
   exactly what makes the parallel step phase sound. *)
let run_full_info ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net
    ~init ~step =
  let n = Network.n net in
  let nbrs = Array.init n (Network.neighbors net) in
  let states = Array.init n init in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let halt_req = Array.make n false in
  let round = ref 0 in
  let recs = ref [] in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    let snapshot = Array.copy states in
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then begin
          let nbr_states = List.map (fun u -> (u, snapshot.(u))) nbrs.(v) in
          let s, h = step ~round:!round ~me:v snapshot.(v) nbr_states in
          states.(v) <- s;
          halt_req.(v) <- h
        end);
    let stepped = ref 0 in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        incr stepped;
        if halt_req.(v) then begin
          halted.(v) <- true;
          incr halted_count
        end
      end
    done;
    emit metrics recs ~round:!round ~t0 ~messages:0 ~stepped:!stepped
      ~halted_count:!halted_count ~n ~sample:states.(0);
    incr round
  done;
  (states, finish ~rounds:!round ~messages:0 recs)

(* Gather the (node, state) pairs within radius [k] of every node by
   flooding for [k] rounds — the canonical LOCAL primitive: any
   [T]-round algorithm is equivalent to collecting the radius-[T]
   neighborhood and deciding locally. *)
let gather_balls ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net
    ~radius ~(value : int -> 'a) : (int * 'a) list array * stats =
  let init v = [ (v, value v) ] in
  let merge l l' =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) (List.rev_append l l')
  in
  let step ~round ~me:_ s nbrs =
    let s' = List.fold_left (fun acc (_, l) -> merge acc l) s nbrs in
    (s', round + 1 >= radius)
  in
  if radius = 0 then
    ( Array.init (Network.n net) (fun v -> [ (v, value v) ]),
      { rounds = 0; messages = 0; per_round = [] } )
  else run_full_info ~max_rounds ?domains ~metrics net ~init ~step
