(* Synchronous execution engine for the LOCAL model.

   In each round, every non-halted node consumes the messages sent to it in
   the previous round, updates its state, and emits new messages to
   neighbors. Messages are unbounded (standard LOCAL); the complexity
   measure is the number of rounds until every node has halted.

   Two interfaces are provided:
   - a message-passing interface ([run]) where nodes address messages to
     neighbor indices, and
   - a full-information interface ([run_full_info]) where each round every
     node sees the previous-round state of each neighbor — equivalent to
     LOCAL since messages are unbounded, and the natural way to express
     the paper's algorithms.

   Both engines step the non-halted nodes of a round IN PARALLEL across
   OCaml 5 domains ([Par]): all nodes read the same immutable snapshot
   (previous-round states / inboxes) and each writes only its own cell of
   the result arrays, so the parallel execution is faithful to the
   synchronous-round semantics by construction. Everything order-sensitive
   — message delivery, the non-neighbor check, halt bookkeeping, metrics —
   happens in a sequential merge sweep over nodes 0..n-1 after the
   parallel phase, in exactly the order the sequential engine used; with
   [~domains:1] no domain is spawned and the engine IS the sequential
   reference, which the differential tests exploit.

   Message storage is a double-buffered ARENA instead of the former
   per-node [(sender, msg) list] inboxes: each round the per-destination
   message counts are prefix-summed into an offsets array and all payloads
   land in two flat arrays (sender, message), giving per-node inbox
   SLICES. The commit sweep walks senders in node order, so every slice
   holds its messages in ascending sender order — exactly the order the
   list engine delivered after its [List.rev]. The parallel step phase
   reads only its own node's slice (disjoint reads of an immutable
   snapshot), and the two arenas swap roles every round, so steady-state
   rounds allocate nothing proportional to the message count.

   Above [par_commit_cutoff] nodes the commit sweep itself also runs in
   parallel: each domain counts its own contiguous sender chunk into a
   private per-destination array, a shared prefix sum turns those into
   per-(destination, domain) slot starts, and the scatter reuses the
   same chunking — ascending domain blocks of ascending senders, i.e.
   exactly the sequential ascending-sender slice order, so results stay
   bit-identical at any [~domains] (differentially tested). See
   DESIGN.md §9 for the layout and the determinism argument. *)

exception Round_limit_exceeded of int

type ('s, 'm) step_result = { state : 's; send : (int * 'm) list; halt : bool }

type stats = { rounds : int; messages : int; per_round : Metrics.round_record list }

let default_max_rounds = 1_000_000

(* Per-node neighbor arrays, read straight off the CSR: slices are already
   sorted by neighbor, so the per-message destination check is an
   O(log deg) binary search with no per-run sort. *)
let neighbor_index net =
  let g = Network.graph net in
  Array.init (Network.n net) (fun v ->
      let deg = Network.Graph.degree g v in
      let a = Array.make deg 0 in
      let i = ref 0 in
      Network.Graph.iter_adj g v (fun u _ ->
          a.(!i) <- u;
          incr i);
      a)

let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let y = a.(mid) in
    if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
  done;
  !found

(* ---- the message arena ----

   [off] has length n+1; the inbox of node [v] is the slice
   [off.(v), off.(v+1)) of the parallel [src]/[msg] arrays. [msg] is
   allocated lazily on the first message of the run (we need a message
   value as the array filler) and both payload arrays grow by doubling;
   stale slots beyond [total] are never read. *)
type 'm arena = {
  mutable off : int array;
  mutable src : int array;
  mutable msg : 'm array;
  mutable total : int;
}

let arena_create n = { off = Array.make (n + 1) 0; src = [||]; msg = [||]; total = 0 }

let arena_capacity a = Array.length a.msg

(* The inbox slice of [v], materialised as the [(sender, msg)] list the
   step API consumes; slice order is ascending sender order. *)
let arena_inbox a v =
  let lo = a.off.(v) and hi = a.off.(v + 1) in
  let rec go i acc = if i < lo then acc else go (i - 1) ((a.src.(i), a.msg.(i)) :: acc) in
  go (hi - 1) []

let arena_max_inbox a n =
  let best = ref 0 in
  for v = 0 to n - 1 do
    best := max !best (a.off.(v + 1) - a.off.(v))
  done;
  !best

(* The domain count a [?domains] argument resolves to for an [n]-node
   parallel phase — what [Par.fork_join] will actually use, surfaced in
   metrics as the round's [par_width]. *)
let effective_domains ?domains n =
  min (match domains with Some d -> max 1 d | None -> Par.default_domains ()) (max 1 n)

(* One metrics record, appended both to the sink and to the per-run
   accumulator surfaced through [stats.per_round]. *)
let emit metrics acc ~round ~t0 ~messages ~stepped ~halted_count ~n ~sample ~max_inbox
    ~arena_occupancy ~par_width =
  if Metrics.enabled metrics then begin
    let r =
      {
        Metrics.round;
        phase = Metrics.phase metrics;
        wall_ns = Metrics.now_ns () - t0;
        messages;
        stepped;
        halted_fraction = (if n = 0 then 1.0 else float_of_int halted_count /. float_of_int n);
        state_words = Metrics.state_words sample;
        max_inbox;
        arena_occupancy;
        par_width;
      }
    in
    Metrics.record metrics r;
    acc := r :: !acc
  end

let finish ~rounds ~messages acc = { rounds; messages; per_round = List.rev !acc }

(* Below this node count the parallel commit sweep's per-domain count
   arrays and extra barriers cost more than the O(n) sequential sweep
   they replace; measured crossover is in the low thousands. *)
let par_commit_cutoff = 2048

let run ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net ~init ~step =
  let n = Network.n net in
  let nbr_index = neighbor_index net in
  let states = Array.init n init in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  (* double buffer: [cur] is this round's inboxes, [nxt] receives the
     sends; they swap at the end of every round *)
  let cur = ref (arena_create n) in
  let nxt = ref (arena_create n) in
  let counts = Array.make (max n 1) 0 in
  let results : ('s, 'm) step_result option array = Array.make n None in
  let round = ref 0 in
  let messages = ref 0 in
  let recs = ref [] in
  let par_width = effective_domains ?domains n in
  (* parallel commit sweep scratch: one destination-count array per
     domain, plus per-domain tallies. [bounds] fixes the sender chunking
     shared by the count and scatter passes. Engaged only when the node
     count amortises the k·n scratch (sequential sweep otherwise). *)
  let commit_k = if par_width > 1 && n >= par_commit_cutoff then par_width else 1 in
  let dcounts = Array.init (if commit_k > 1 then commit_k else 0) (fun _ -> Array.make n 0) in
  let dstepped = Array.make (max commit_k 1) 0 in
  let dhalted = Array.make (max commit_k 1) 0 in
  let dmsgs = Array.make (max commit_k 1) 0 in
  let dfiller = Array.make (max commit_k 1) None in
  let col_total = Array.make (if commit_k > 1 then n else 0) 0 in
  let bounds = if commit_k > 1 then Par.chunks ~domains:commit_k ~n else [||] in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    let inbox_arena = !cur in
    (* parallel phase: pure per-node computation against the round's
       snapshot; node [v] reads only its own inbox slice and writes only
       [results.(v)] *)
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then
          results.(v) <- Some (step ~round:!round ~me:v states.(v) (arena_inbox inbox_arena v)));
    let stepped = ref 0 in
    let round_msgs = ref 0 in
    let dst = !nxt in
    if commit_k <= 1 then begin
      (* sequential merge in node order. Pass 1 commits states/halts and
         validates every destination in exactly the interleaving the list
         engine used (so a non-neighbor send raises after the same
         prefix of state commits), accumulating per-destination counts. *)
      Array.fill counts 0 (max n 1) 0;
      for v = 0 to n - 1 do
        match results.(v) with
        | None -> ()
        | Some r ->
          incr stepped;
          states.(v) <- r.state;
          if r.halt then begin
            halted.(v) <- true;
            incr halted_count
          end;
          List.iter
            (fun (target, _) ->
              if not (mem_sorted nbr_index.(v) target) then
                invalid_arg "Runtime.run: message to non-neighbor";
              incr round_msgs;
              counts.(target) <- counts.(target) + 1)
            r.send
      done;
      (* prefix-sum the counts into the next arena's offsets and write each
         message into its destination slice; sweeping senders in node order
         fills every slice in ascending sender order *)
      dst.off.(0) <- 0;
      for v = 0 to n - 1 do
        dst.off.(v + 1) <- dst.off.(v) + counts.(v)
      done;
      dst.total <- !round_msgs;
      if Array.length dst.src < !round_msgs then
        dst.src <- Array.make (max !round_msgs (2 * Array.length dst.src)) 0;
      let cursor = Array.blit dst.off 0 counts 0 (max n 1); counts in
      for v = 0 to n - 1 do
        match results.(v) with
        | None -> ()
        | Some r ->
          results.(v) <- None;
          List.iter
            (fun (target, msg) ->
              let p = cursor.(target) in
              cursor.(target) <- p + 1;
              if Array.length dst.msg < dst.total then
                (* first message of the run (or a grown round): (re)allocate
                   using a real message as filler *)
                dst.msg <-
                  (let grown = Array.make (max dst.total (2 * Array.length dst.msg)) msg in
                   Array.blit dst.msg 0 grown 0 (Array.length dst.msg);
                   grown);
              dst.src.(p) <- v;
              dst.msg.(p) <- msg)
            r.send
      done
    end
    else begin
      (* parallel commit sweep. Pass A: each domain commits the states
         and halts of its own sender chunk (disjoint cells), validates
         destinations, and accumulates counts into its private
         destination array. A non-neighbor send raises from the
         lowest-numbered raising chunk — i.e. the globally lowest
         offending sender, the same node the sequential sweep blamed. *)
      Par.parallel_for ~domains:commit_k ~n:commit_k (fun j ->
          let lo, hi = bounds.(j) in
          let counts_j = dcounts.(j) in
          Array.fill counts_j 0 n 0;
          let stp = ref 0 and hlt = ref 0 and msgs = ref 0 in
          for v = lo to hi do
            match results.(v) with
            | None -> ()
            | Some r ->
              incr stp;
              states.(v) <- r.state;
              if r.halt then begin
                halted.(v) <- true;
                incr hlt
              end;
              List.iter
                (fun ((target, m) : int * 'm) ->
                  if not (mem_sorted nbr_index.(v) target) then
                    invalid_arg "Runtime.run: message to non-neighbor";
                  incr msgs;
                  (match dfiller.(j) with None -> dfiller.(j) <- Some m | Some _ -> ());
                  counts_j.(target) <- counts_j.(target) + 1)
                r.send
          done;
          dstepped.(j) <- !stp;
          dhalted.(j) <- !hlt;
          dmsgs.(j) <- !msgs);
      for j = 0 to commit_k - 1 do
        stepped := !stepped + dstepped.(j);
        halted_count := !halted_count + dhalted.(j);
        round_msgs := !round_msgs + dmsgs.(j)
      done;
      (* shared prefix sum. Per destination, turn each domain's count
         into its slot start within that destination's slice (parallel
         over destinations); the only remaining sequential pass is the
         bare int scan turning per-destination totals into offsets. *)
      Par.parallel_for ?domains ~n (fun v ->
          let running = ref 0 in
          for j = 0 to commit_k - 1 do
            let c = dcounts.(j).(v) in
            dcounts.(j).(v) <- !running;
            running := !running + c
          done;
          col_total.(v) <- !running);
      dst.off.(0) <- 0;
      for v = 0 to n - 1 do
        dst.off.(v + 1) <- dst.off.(v) + col_total.(v)
      done;
      dst.total <- !round_msgs;
      if Array.length dst.src < !round_msgs then
        dst.src <- Array.make (max !round_msgs (2 * Array.length dst.src)) 0;
      if Array.length dst.msg < !round_msgs then begin
        (* grow BEFORE the parallel scatter (reallocation inside a domain
           would race); any message captured in pass A serves as filler,
           and [round_msgs > 0] guarantees one exists *)
        let filler = ref None in
        for j = 0 to commit_k - 1 do
          if !filler = None then filler := dfiller.(j)
        done;
        match !filler with
        | None -> ()
        | Some m ->
          let grown = Array.make (max !round_msgs (2 * Array.length dst.msg)) m in
          Array.blit dst.msg 0 grown 0 (Array.length dst.msg);
          dst.msg <- grown
      end;
      (* Pass B: scatter with the same sender chunking. Domain [j]'s
         messages to [target] land at [off + its slot start], cursored
         through its private count cell — so a slice holds domain 0's
         senders, then domain 1's, ..., each ascending: ascending sender
         order overall, bit-identical to the sequential scatter. *)
      Par.parallel_for ~domains:commit_k ~n:commit_k (fun j ->
          let lo, hi = bounds.(j) in
          let counts_j = dcounts.(j) in
          for v = lo to hi do
            match results.(v) with
            | None -> ()
            | Some r ->
              results.(v) <- None;
              List.iter
                (fun (target, msg) ->
                  let p = dst.off.(target) + counts_j.(target) in
                  counts_j.(target) <- counts_j.(target) + 1;
                  dst.src.(p) <- v;
                  dst.msg.(p) <- msg)
                r.send
          done)
    end;
    messages := !messages + !round_msgs;
    (* n > 0 inside the loop, so states.(0) is a valid sample *)
    emit metrics recs ~round:!round ~t0 ~messages:!round_msgs ~stepped:!stepped
      ~halted_count:!halted_count ~n ~sample:states.(0)
      ~max_inbox:(arena_max_inbox inbox_arena n)
      ~arena_occupancy:(max (arena_capacity !cur) (arena_capacity !nxt))
      ~par_width;
    cur := dst;
    nxt := inbox_arena;
    incr round
  done;
  (states, finish ~rounds:!round ~messages:!messages recs)

(* ---- the flat full-information engine ----

   The generalized record-of-arrays engine every full-information
   protocol now runs on. State is a [Flat_state.t] (parallel int/float
   columns plus an optional boxed payload column); [prev] is a
   double-buffered snapshot refreshed by column blits at the top of each
   round. A step receives both buffers plus its CSR-aligned neighbor
   slice and the contract is: read anything from [prev], write only row
   [me] of [cur], return the halt request. Halt bookkeeping happens in a
   sequential sweep in node order after the parallel phase, so the
   result is bit-identical for any [domains] — the same determinism
   contract as [run], asserted by the differential tests. *)
let run_flat ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net ~state
    ~step =
  let n = Network.n net in
  if Flat_state.n state <> n then invalid_arg "Runtime.run_flat: state/network size mismatch";
  let nbrs = neighbor_index net in
  let cur = state in
  let prev = Flat_state.copy state in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let halt_req = Array.make n false in
  let round = ref 0 in
  let recs = ref [] in
  let par_width = effective_domains ?domains n in
  let payload = Flat_state.payload_column cur in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    Flat_state.blit ~src:cur ~dst:prev;
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then
          halt_req.(v) <- step ~round:!round ~me:v ~prev ~cur ~nbrs:nbrs.(v));
    let stepped = ref 0 in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        incr stepped;
        if halt_req.(v) then begin
          halted.(v) <- true;
          incr halted_count
        end
      end
    done;
    (* sample the payload column when the protocol has one (so
       state-growth protocols like ball gathering stay observable);
       pure column states sample as an immediate, i.e. 0 words *)
    (if Array.length payload > 0 then
       emit metrics recs ~round:!round ~t0 ~messages:0 ~stepped:!stepped
         ~halted_count:!halted_count ~n ~sample:payload.(0) ~max_inbox:0 ~arena_occupancy:0
         ~par_width
     else
       emit metrics recs ~round:!round ~t0 ~messages:0 ~stepped:!stepped
         ~halted_count:!halted_count ~n ~sample:0 ~max_inbox:0 ~arena_occupancy:0 ~par_width);
    incr round
  done;
  (cur, finish ~rounds:!round ~messages:0 recs)

(* Full-information rounds: each node's step sees [(neighbor, neighbor's
   state at the start of the round)]. All nodes are stepped against the
   same snapshot, faithfully modelling synchronous rounds — which is also
   exactly what makes the parallel step phase sound.

   This is the RETIRED boxed engine, kept verbatim as an ablation
   baseline (bench flat-vs-boxed rows) and as the reference
   implementation the compatibility shim below is tested against. New
   protocols must target [run_flat]; the @flat-lint alias keeps boxed
   calls from creeping back into lib/. *)
let run_full_info_boxed ?(max_rounds = default_max_rounds) ?domains
    ?(metrics = Metrics.disabled) net ~init ~step =
  let n = Network.n net in
  let nbrs = neighbor_index net in
  let states = Array.init n init in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let halt_req = Array.make n false in
  let round = ref 0 in
  let recs = ref [] in
  while !halted_count < n do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let t0 = if Metrics.enabled metrics then Metrics.now_ns () else 0 in
    let snapshot = Array.copy states in
    Par.parallel_for ?domains ~n (fun v ->
        if not halted.(v) then begin
          let nbr_states =
            Array.to_list (Array.map (fun u -> (u, snapshot.(u))) nbrs.(v))
          in
          let s, h = step ~round:!round ~me:v snapshot.(v) nbr_states in
          states.(v) <- s;
          halt_req.(v) <- h
        end);
    let stepped = ref 0 in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        incr stepped;
        if halt_req.(v) then begin
          halted.(v) <- true;
          incr halted_count
        end
      end
    done;
    emit metrics recs ~round:!round ~t0 ~messages:0 ~stepped:!stepped
      ~halted_count:!halted_count ~n ~sample:states.(0) ~max_inbox:0 ~arena_occupancy:0
      ~par_width:(effective_domains ?domains n);
    incr round
  done;
  (states, finish ~rounds:!round ~messages:0 recs)

(* Compatibility shim over [run_flat]: the historical boxed API
   (assoc-list neighborhoods), now a payload-column protocol on the flat
   engine. Kept for tests and examples; hot paths call [run_flat]
   directly. The per-node assoc list is materialised inside the step
   wrapper, so callers see exactly the old interface and — because the
   wrapper reads the same snapshot in the same order — exactly the old
   results. *)
let run_full_info ?max_rounds ?domains ?metrics net ~init ~step =
  let n = Network.n net in
  let state = Flat_state.create ~n ~payload:init () in
  let stepf ~round ~me ~prev ~cur ~nbrs =
    let payload = Flat_state.payload_column prev in
    let nbr_states = Array.to_list (Array.map (fun u -> (u, payload.(u))) nbrs) in
    let s, h = step ~round ~me payload.(me) nbr_states in
    Flat_state.set_payload cur me s;
    h
  in
  let st, stats = run_flat ?max_rounds ?domains ?metrics net ~state ~step:stepf in
  (Flat_state.payload_column st, stats)

(* Flat int-state variant of [run_full_info], for protocols whose whole
   node state is one integer (colorings, floods) — now a one-int-column
   wrapper over [run_flat] that still materialises the neighbor int
   array the historical API promised. Protocols wanting the zero-alloc
   path read the column straight off [prev] via [run_flat] instead. *)
let run_full_info_flat ?max_rounds ?domains ?metrics net ~init ~step =
  let n = Network.n net in
  let state = Flat_state.create ~n ~int_fields:1 () in
  let col = Flat_state.int_column state 0 in
  for v = 0 to n - 1 do
    col.(v) <- init v
  done;
  let stepf ~round ~me ~prev ~cur ~nbrs =
    let snapshot = Flat_state.int_column prev 0 in
    let nbr_states = Array.map (fun u -> snapshot.(u)) nbrs in
    let s, h = step ~round ~me snapshot.(me) nbr_states in
    Flat_state.set_int cur 0 me s;
    h
  in
  let st, stats = run_flat ?max_rounds ?domains ?metrics net ~state ~step:stepf in
  (Flat_state.int_column st 0, stats)

(* Gather the (node, state) pairs within radius [k] of every node by
   flooding for [k] rounds — the canonical LOCAL primitive: any
   [T]-round algorithm is equivalent to collecting the radius-[T]
   neighborhood and deciding locally.

   Ball states are kept sorted by node id, so merging two balls is one
   linear sweep over the sorted lists instead of the former
   [List.sort_uniq] over their concatenation. Entries for the same node
   are identical pairs ([(v, value v)] originates once, at [v], and is
   only ever copied), so keeping either duplicate is the same pair — the
   merge is bit-identical to the sort_uniq it replaces. *)
let merge_sorted_balls l l' =
  let rec go acc l l' =
    match (l, l') with
    | [], rest | rest, [] -> List.rev_append acc rest
    | ((a, _) as x) :: tl, ((b, _) as y) :: tl' ->
      if a < b then go (x :: acc) tl l'
      else if b < a then go (y :: acc) l tl'
      else go (x :: acc) tl tl'
  in
  go [] l l'

let gather_balls ?(max_rounds = default_max_rounds) ?domains ?(metrics = Metrics.disabled) net
    ~radius ~(value : int -> 'a) : (int * 'a) list array * stats =
  if radius = 0 then
    ( Array.init (Network.n net) (fun v -> [ (v, value v) ]),
      { rounds = 0; messages = 0; per_round = [] } )
  else begin
    let n = Network.n net in
    let state = Flat_state.create ~n ~payload:(fun v -> [ (v, value v) ]) () in
    let step ~round ~me ~prev ~cur ~nbrs =
      let balls = Flat_state.payload_column prev in
      (* ascending CSR slice order — the same merge order as the old
         assoc-list fold, so the result lists are bit-identical *)
      let s' =
        Array.fold_left (fun acc u -> merge_sorted_balls acc balls.(u)) balls.(me) nbrs
      in
      Flat_state.set_payload cur me s';
      round + 1 >= radius
    in
    let st, stats = run_flat ~max_rounds ?domains ~metrics net ~state ~step in
    (Flat_state.payload_column st, stats)
  end
