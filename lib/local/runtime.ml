(* Synchronous execution engine for the LOCAL model.

   In each round, every non-halted node consumes the messages sent to it in
   the previous round, updates its state, and emits new messages to
   neighbors. Messages are unbounded (standard LOCAL); the complexity
   measure is the number of rounds until every node has halted.

   Two interfaces are provided:
   - a message-passing interface ([run]) where nodes address messages to
     neighbor indices, and
   - a full-information interface ([run_full_info]) where each round every
     node sees the previous-round state of each neighbor — equivalent to
     LOCAL since messages are unbounded, and the natural way to express
     the paper's algorithms. *)

exception Round_limit_exceeded of int

type ('s, 'm) step_result = { state : 's; send : (int * 'm) list; halt : bool }

type stats = { rounds : int; messages : int }

let default_max_rounds = 1_000_000

let run ?(max_rounds = default_max_rounds) net ~init ~step =
  let n = Network.n net in
  let states = Array.init n init in
  let halted = Array.make n false in
  let inboxes : (int * 'm) list array = Array.make n [] in
  let round = ref 0 in
  let messages = ref 0 in
  let all_halted () = Array.for_all (fun h -> h) halted in
  while not (all_halted ()) do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let outboxes = Array.make n [] in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        let inbox = List.rev inboxes.(v) in
        let r = step ~round:!round ~me:v states.(v) inbox in
        states.(v) <- r.state;
        halted.(v) <- r.halt;
        List.iter
          (fun (target, msg) ->
            if not (List.mem target (Network.neighbors net v)) then
              invalid_arg "Runtime.run: message to non-neighbor";
            incr messages;
            outboxes.(target) <- (v, msg) :: outboxes.(target))
          r.send
      end
    done;
    Array.blit outboxes 0 inboxes 0 n;
    incr round
  done;
  (states, { rounds = !round; messages = !messages })

(* Full-information rounds: each node's step sees [(neighbor, neighbor's
   state at the start of the round)]. All nodes are stepped against the
   same snapshot, faithfully modelling synchronous rounds. *)
let run_full_info ?(max_rounds = default_max_rounds) net ~init ~step =
  let n = Network.n net in
  let states = Array.init n init in
  let halted = Array.make n false in
  let round = ref 0 in
  let all_halted () = Array.for_all (fun h -> h) halted in
  while not (all_halted ()) do
    if !round >= max_rounds then raise (Round_limit_exceeded max_rounds);
    let snapshot = Array.copy states in
    for v = 0 to n - 1 do
      if not halted.(v) then begin
        let nbr_states = List.map (fun u -> (u, snapshot.(u))) (Network.neighbors net v) in
        let s, h = step ~round:!round ~me:v snapshot.(v) nbr_states in
        states.(v) <- s;
        halted.(v) <- h
      end
    done;
    incr round
  done;
  (states, { rounds = !round; messages = 0 })

(* Gather the (node, state) pairs within radius [k] of every node by
   flooding for [k] rounds — the canonical LOCAL primitive: any
   [T]-round algorithm is equivalent to collecting the radius-[T]
   neighborhood and deciding locally. *)
let gather_balls ?(max_rounds = default_max_rounds) net ~radius ~(value : int -> 'a) :
    (int * 'a) list array * stats =
  let init v = [ (v, value v) ] in
  let merge l l' =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) (List.rev_append l l')
  in
  let step ~round ~me:_ s nbrs =
    let s' = List.fold_left (fun acc (_, l) -> merge acc l) s nbrs in
    (s', round + 1 >= radius)
  in
  if radius = 0 then (Array.init (Network.n net) (fun v -> [ (v, value v) ]), { rounds = 0; messages = 0 })
  else run_full_info ~max_rounds net ~init ~step
