(** Distributed coloring on the LOCAL runtime: Linial reduction plus
    class-by-class cleanup, and the derived 2-hop coloring used by the
    paper's Corollary 1.4. *)

val schedule : dmax:int -> m:int -> (int * int * int) list
(** The deterministic [(q, t, colors-after)] Linial parameter schedule
    starting from [m] colors, derivable by every node without
    communication. *)

val linial_step : q:int -> t:int -> int -> int list -> int
(** One Linial reduction step: my new color given my color and my
    neighbors' colors. *)

val kw_schedule : dmax:int -> m:int -> int list
(** Palette sizes at the start of each Kuhn–Wattenhofer halving phase
    (each phase costs [dmax + 1] rounds). *)

val color : ?id_bound:int -> ?domains:int -> ?metrics:Metrics.sink -> Network.t -> int array * int
(** Proper [(max_degree + 1)]-coloring computed distributedly;
    [(coloring, LOCAL rounds)]. Rounds are [O(poly d + log* id_bound)].
    [domains]/[metrics] are forwarded to the runtime. *)

val two_hop_color : ?domains:int -> ?metrics:Metrics.sink -> Network.t -> int array * int
(** Proper coloring of the square graph (nodes within distance 2 get
    distinct colors) with at most [max_degree^2 + 1] colors; each square-
    graph round is charged as two real rounds. *)
