(** LOCAL-model communication networks: a graph plus unique node
    identifiers. *)

module Graph = Lll_graph.Graph

type t

val create : ?ids:int array -> Graph.t -> t
(** Defaults to identity ids; duplicate ids raise [Invalid_argument]. *)

val graph : t -> Graph.t
val n : t -> int
val id : t -> int -> int
val ids : t -> int array
val neighbors : t -> int -> int list

val degree : t -> int -> int
(** O(1): per-node degrees are cached at {!create}. *)

val max_degree : t -> int
(** O(1): cached at {!create}. *)

val with_shuffled_ids : seed:int -> t -> t
(** Same topology with a seeded random permutation of the ids. *)
