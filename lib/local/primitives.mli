(** Classic LOCAL primitives: leader election and BFS spanning trees.

    Round bounds are uniform across both entry points: the protocol
    halts after its internal diameter bound (default [n], the safe
    LOCAL bound), while [?max_rounds] (default
    [Runtime.default_max_rounds]) is the engine's hard cap — exceeding
    it raises [Runtime.Round_limit_exceeded]. *)

module Graph = Lll_graph.Graph

val elect_leader :
  ?max_rounds:int -> ?diameter_bound:int -> ?domains:int -> Network.t -> int array * int
(** Minimum-id flooding; returns each node's view of the leader id and
    the round count (halts after [diameter_bound] rounds, default [n]).
    Runs on the flat engine. *)

val bfs_tree :
  ?max_rounds:int -> ?domains:int -> Network.t -> root:int -> int array * int array * int
(** [(parents, dists, rounds)]: parent is [-1] for the root and for
    unreachable nodes (whose dist is also [-1]). Runs on the flat
    engine (two int columns: dist, parent). *)

val elect_leader_boxed :
  ?max_rounds:int -> ?diameter_bound:int -> ?domains:int -> Network.t -> int array * int
(** Boxed-engine ablation baseline; agrees with {!elect_leader}. *)

val bfs_tree_boxed :
  ?max_rounds:int -> ?domains:int -> Network.t -> root:int -> int array * int array * int
(** Boxed-engine ablation baseline; agrees with {!bfs_tree}. *)

val is_bfs_tree : Graph.t -> root:int -> int array -> int array -> bool
