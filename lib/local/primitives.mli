(** Classic LOCAL primitives: leader election and BFS spanning trees. *)

module Graph = Lll_graph.Graph

val elect_leader : ?diameter_bound:int -> ?domains:int -> Network.t -> int array * int
(** Minimum-id flooding; returns each node's view of the leader id and
    the round count (defaults to [n] rounds, a safe diameter bound). *)

val bfs_tree :
  ?max_rounds:int -> ?domains:int -> Network.t -> root:int -> int array * int array * int
(** [(parents, dists, rounds)]: parent is [-1] for the root and for
    unreachable nodes (whose dist is also [-1]). *)

val is_bfs_tree : Graph.t -> root:int -> int array -> int array -> bool
