(** Round-level metrics for the LOCAL runtime, behind a
    zero-cost-when-disabled sink. *)

type round_record = {
  round : int;  (** round index within its runtime invocation *)
  phase : string;  (** caller-set label, e.g. ["coloring"] / ["sweep"] *)
  wall_ns : int;  (** wall-clock nanoseconds spent on the round *)
  messages : int;  (** messages sent this round (0 for full-info rounds) *)
  stepped : int;  (** nodes that executed their step function *)
  halted_fraction : float;  (** fraction of nodes halted after the round *)
  state_words : int;  (** heap words of a sampled node state (size proxy) *)
  max_inbox : int;  (** largest inbox consumed this round (0 for full-info) *)
  arena_occupancy : int;  (** message-arena capacity in slots (0 when unused) *)
  par_width : int;
      (** domains driving the round or sweep; [0] for sequential units
          recorded via {!record_step} *)
}

type sink

val disabled : sink
(** The no-op sink: recording is a single branch, no allocation. *)

val buffer : unit -> sink
(** A fresh accumulating sink; records survive across multiple runtime
    invocations (coloring then sweep, say). *)

val callback : (round_record -> unit) -> sink
(** A streaming sink: every record is handed to the function the moment
    it is produced (the serve layer pushes per-round JSON frames this
    way). Nothing accumulates — {!records} returns [[]]. The callback
    runs on the recording thread; keep it cheap and non-raising. *)

val enabled : sink -> bool
val set_phase : sink -> string -> unit
val phase : sink -> string
val record : sink -> round_record -> unit

val record_step : sink -> round:int -> total:int -> wall_ns:int -> state:'a -> unit
(** Record one *sequential* unit of work (a fixing step, say) in the same
    shape as a runtime round, so serial and distributed runs dump
    comparable JSON: one node stepped, no messages, halted fraction
    [round+1 / total], phase taken from the sink. No-op when disabled. *)

val record_sweep :
  sink -> round:int -> total:int -> wall_ns:int -> width:int -> domains:int -> unit
(** Record one color-class fixer sweep: [width] owners fixed their duty
    lists concurrently across [domains] domains. [stepped] carries the
    width and [par_width] the domain count, so parallel efficiency
    (width / domains) can be read off a dump. No-op when disabled. *)

val records : sink -> round_record list
(** Accumulated records, oldest first ([[]] for {!disabled}). *)

val clear : sink -> unit

val now_ns : unit -> int
(** Wall-clock nanoseconds (for the runtime's per-round timing). *)

val state_words : 'a -> int
(** Reachable heap words of a value; [0] for immediates. *)

val record_to_json : round_record -> string
(** One record as a single JSON object (the serve layer's per-round
    streaming frames). *)

val to_json : round_record list -> string
val write_json : string -> round_record list -> unit

val total_messages : round_record list -> int
val total_wall_ns : round_record list -> int
val pp : Format.formatter -> round_record list -> unit
