(* Round-level observability for the LOCAL runtime.

   The runtime records one [round_record] per synchronous round into a
   [sink]. The disabled sink is a constant constructor, so the runtime's
   fast path pays a single branch per round and allocates nothing —
   metrics are strictly opt-in. A buffering sink accumulates records
   across multiple runtime invocations (e.g. the coloring phase and the
   sweep phase of a distributed LLL solve), tagged with a caller-set
   phase label so a dump can be sliced per phase. *)

type round_record = {
  round : int;  (* round index within its runtime invocation *)
  phase : string;  (* caller-set label, e.g. "coloring" / "sweep" *)
  wall_ns : int;  (* wall-clock nanoseconds spent on the round *)
  messages : int;  (* messages sent this round (0 for full-info rounds) *)
  stepped : int;  (* nodes that executed their step function *)
  halted_fraction : float;  (* fraction of nodes halted after the round *)
  state_words : int;  (* heap words of a sampled node state (size proxy) *)
  max_inbox : int;  (* largest inbox consumed this round (0 for full-info) *)
  arena_occupancy : int;  (* message-arena capacity in slots (0 when unused) *)
  par_width : int;  (* domains driving the round / sweep (0 = sequential unit) *)
}

type buffer = { mutable phase : string; mutable recs : round_record list (* newest first *) }

(* A streaming sink: each record is handed to the callback the moment it
   is produced (the serve layer uses this to push per-round JSON frames
   to a client while the solve is still running). Nothing accumulates;
   [records] on a callback sink is []. *)
type callback_sink = { mutable cb_phase : string; cb_emit : round_record -> unit }

type sink = Disabled | Buffer of buffer | Callback of callback_sink

let disabled = Disabled

let buffer () = Buffer { phase = ""; recs = [] }

let callback f = Callback { cb_phase = ""; cb_emit = f }

let enabled = function Disabled -> false | Buffer _ | Callback _ -> true

let set_phase sink p =
  match sink with Disabled -> () | Buffer b -> b.phase <- p | Callback c -> c.cb_phase <- p

let phase = function Disabled -> "" | Buffer b -> b.phase | Callback c -> c.cb_phase

let record sink r =
  match sink with
  | Disabled -> ()
  | Buffer b -> b.recs <- r :: b.recs
  | Callback c -> c.cb_emit r

let step_record ~phase ~round ~total ~wall_ns ~state =
  {
    round;
    phase;
    wall_ns;
    messages = 0;
    stepped = 1;
    halted_fraction = (if total = 0 then 1. else float_of_int (round + 1) /. float_of_int total);
    state_words =
      (let r = Obj.repr state in
       if Obj.is_int r then 0 else Obj.reachable_words r);
    max_inbox = 0;
    arena_occupancy = 0;
    par_width = 0;
  }

let record_step sink ~round ~total ~wall_ns ~state =
  match sink with
  | Disabled -> ()
  | Buffer b -> b.recs <- step_record ~phase:b.phase ~round ~total ~wall_ns ~state :: b.recs
  | Callback c -> c.cb_emit (step_record ~phase:c.cb_phase ~round ~total ~wall_ns ~state)

(* One record per color-class sweep of a distributed fixer: [stepped]
   carries the class size (how many owners fixed concurrently) and
   [par_width] the domains actually used, so a dump can report parallel
   efficiency (width / par_width) next to round counts. *)
let sweep_record ~phase ~round ~total ~wall_ns ~width ~domains =
  {
    round;
    phase;
    wall_ns;
    messages = 0;
    stepped = width;
    halted_fraction = (if total = 0 then 1. else float_of_int (round + 1) /. float_of_int total);
    state_words = 0;
    max_inbox = 0;
    arena_occupancy = 0;
    par_width = domains;
  }

let record_sweep sink ~round ~total ~wall_ns ~width ~domains =
  match sink with
  | Disabled -> ()
  | Buffer b -> b.recs <- sweep_record ~phase:b.phase ~round ~total ~wall_ns ~width ~domains :: b.recs
  | Callback c -> c.cb_emit (sweep_record ~phase:c.cb_phase ~round ~total ~wall_ns ~width ~domains)

let records = function Disabled | Callback _ -> [] | Buffer b -> List.rev b.recs

let clear = function Disabled | Callback _ -> () | Buffer b -> b.recs <- []

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

(* Heap words reachable from a sampled state value — a cheap proxy for
   per-node state growth (e.g. ball gathering doubles it every round).
   Immediate values (ints, constant constructors) report 0. *)
let state_words (v : 'a) =
  let r = Obj.repr v in
  if Obj.is_int r then 0 else Obj.reachable_words r

(* ---- JSON dump (hand-rolled: no JSON library in the tree) ---- *)

let escape s =
  let b = Stdlib.Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Stdlib.Buffer.add_string b "\\\""
      | '\\' -> Stdlib.Buffer.add_string b "\\\\"
      | '\n' -> Stdlib.Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Stdlib.Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Stdlib.Buffer.add_char b c)
    s;
  Stdlib.Buffer.contents b

let record_to_json r =
  Printf.sprintf
    "{\"round\":%d,\"phase\":\"%s\",\"wall_ns\":%d,\"messages\":%d,\"stepped\":%d,\"halted_fraction\":%.6f,\"state_words\":%d,\"max_inbox\":%d,\"arena_occupancy\":%d,\"par_width\":%d}"
    r.round (escape r.phase) r.wall_ns r.messages r.stepped r.halted_fraction r.state_words
    r.max_inbox r.arena_occupancy r.par_width

let to_json recs =
  let b = Stdlib.Buffer.create 4096 in
  Stdlib.Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Stdlib.Buffer.add_string b ",\n";
      Stdlib.Buffer.add_string b "  ";
      Stdlib.Buffer.add_string b (record_to_json r))
    recs;
  Stdlib.Buffer.add_string b "\n]\n";
  Stdlib.Buffer.contents b

let write_json path recs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json recs))

(* ---- aggregates (for quick textual reports) ---- *)

let total_messages recs = List.fold_left (fun acc r -> acc + r.messages) 0 recs

let total_wall_ns recs = List.fold_left (fun acc r -> acc + r.wall_ns) 0 recs

let pp fmt recs =
  Format.fprintf fmt "%-6s %-14s %10s %10s %10s %8s %12s %9s %9s %5s@." "round" "phase" "wall_us"
    "messages" "stepped" "halted" "state_words" "max_inbox" "arena" "par";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-6d %-14s %10.1f %10d %10d %8.3f %12d %9d %9d %5d@." r.round r.phase
        (float_of_int r.wall_ns /. 1e3)
        r.messages r.stepped r.halted_fraction r.state_words r.max_inbox r.arena_occupancy
        r.par_width)
    recs
