(** Minimal deterministic fork-join parallelism over OCaml 5 [Domain]s.

    [parallel_for] splits [0, n) into [domains] contiguous chunks (a
    static split depending only on [(domains, n)]) and runs them on
    [domains - 1] spawned domains plus the calling one. For bodies with
    independent iterations the outcome is identical to the sequential
    loop, which is what makes the parallel LOCAL runtime differentially
    testable against the sequential engine. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_domains : unit -> int
(** The domain count used when [?domains] is omitted; initially
    {!recommended}. *)

val set_default_domains : int -> unit
(** Override the default (e.g. from a CLI flag).
    @raise Invalid_argument on counts [< 1]. *)

val chunks : domains:int -> n:int -> (int * int) array
(** The static [(lo, hi)] inclusive chunk bounds used by
    {!parallel_for} (exposed for tests); chunks are contiguous, disjoint
    and cover [0, n). *)

val parallel_for : ?domains:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~domains ~n f] runs [f i] for [i = 0..n-1], chunked
    across domains. With [domains = 1] (or [n <= 1]) no domain is
    spawned. All spawned domains are joined before returning; if any
    iteration raised, the exception of the lowest-numbered raising chunk
    is re-raised. The body must only perform writes that are disjoint
    across iterations (e.g. cell [i] of an array). *)
