(* Classic LOCAL/distributed primitives on the runtime: leader election
   by extremum flooding and BFS spanning-tree construction. Not used by
   the LLL algorithms themselves (which are the point of this library),
   but standard substrate any distributed-algorithms toolkit ships, and
   additional exercise for the runtime semantics.

   Both primitives run on the flat record-of-arrays engine
   ([Runtime.run_flat]); the boxed originals are kept below as
   [_boxed] ablation baselines for the differential tests and bench
   rows.

   Round bounds: both entry points take the same pair of knobs. The
   protocol HALTS after its internal bound (diameter bound, default [n]
   — the safe LOCAL bound), and [?max_rounds] (default
   [Runtime.default_max_rounds]) is the engine's hard cap that raises
   [Round_limit_exceeded] if the protocol somehow fails to halt first —
   so a caller-supplied [max_rounds] smaller than the internal bound is
   honored by both entry points. *)

module Graph = Lll_graph.Graph

(* Elect the minimum id by flooding for [diameter_bound] rounds (LOCAL
   standard: n is a safe bound). Every node ends up knowing the leader's
   id; the leader knows it is the leader. *)
let elect_leader ?(max_rounds = Runtime.default_max_rounds) ?(diameter_bound = max_int) ?domains
    net =
  let n = Network.n net in
  let bound = if diameter_bound = max_int then max 1 n else max 1 diameter_bound in
  let state = Flat_state.create ~n ~int_fields:1 () in
  let col = Flat_state.int_column state 0 in
  for v = 0 to n - 1 do
    col.(v) <- Network.id net v
  done;
  let step ~round ~me ~prev ~cur ~nbrs =
    let ids = Flat_state.int_column prev 0 in
    let best = ref ids.(me) in
    Array.iter (fun u -> if ids.(u) < !best then best := ids.(u)) nbrs;
    Flat_state.set_int cur 0 me !best;
    round + 1 >= bound
  in
  let st, stats = Runtime.run_flat ~max_rounds ?domains net ~state ~step in
  (Flat_state.int_column st 0, stats.Runtime.rounds)

(* BFS spanning tree rooted at [root]: each node learns its distance and
   a parent (the smallest-id neighbor strictly closer to the root).
   Returns (parent array, -1 for root/unreachable; dist array). *)
type bfs_state = { dist : int; parent : int }

let bfs_tree ?(max_rounds = Runtime.default_max_rounds) ?domains net ~root =
  let n = Network.n net in
  let bound = max 1 n in
  let state = Flat_state.create ~n ~int_fields:2 () in
  let dist0 = Flat_state.int_column state 0 in
  let parent0 = Flat_state.int_column state 1 in
  for v = 0 to n - 1 do
    dist0.(v) <- (if v = root then 0 else max_int);
    parent0.(v) <- -1
  done;
  let step ~round ~me ~prev ~cur ~nbrs =
    let dists = Flat_state.int_column prev 0 in
    if dists.(me) = max_int then begin
      (* adopt the smallest-id neighbor that already has a distance;
         ascending slice order makes "first strict improvement" the
         smallest id among equals, matching the boxed fold *)
      let best_d = ref max_int and best_u = ref (-1) in
      Array.iter
        (fun u ->
          let d = dists.(u) in
          if d < !best_d then begin
            best_d := d;
            best_u := u
          end)
        nbrs;
      if !best_u >= 0 then begin
        Flat_state.set_int cur 0 me (!best_d + 1);
        Flat_state.set_int cur 1 me !best_u
      end
    end;
    round + 1 >= bound
  in
  let st, stats = Runtime.run_flat ~max_rounds ?domains net ~state ~step in
  let dists = Flat_state.int_column st 0 in
  ( Flat_state.int_column st 1,
    Array.map (fun d -> if d = max_int then -1 else d) dists,
    stats.Runtime.rounds )

(* ---- boxed ablation baselines (retired engine) ---- *)

let elect_leader_boxed ?(max_rounds = Runtime.default_max_rounds) ?(diameter_bound = max_int)
    ?domains net =
  let n = Network.n net in
  let bound = if diameter_bound = max_int then max 1 n else max 1 diameter_bound in
  let states, stats =
    Runtime.run_full_info_boxed ~max_rounds ?domains net
      ~init:(fun v -> Network.id net v)
      ~step:(fun ~round ~me:_ s nbrs ->
        let s = List.fold_left (fun acc (_, x) -> min acc x) s nbrs in
        (s, round + 1 >= bound))
  in
  (states, stats.Runtime.rounds)

let bfs_tree_boxed ?(max_rounds = Runtime.default_max_rounds) ?domains net ~root =
  let n = Network.n net in
  let bound = max 1 n in
  let states, stats =
    Runtime.run_full_info_boxed ~max_rounds ?domains net
      ~init:(fun v -> if v = root then { dist = 0; parent = -1 } else { dist = max_int; parent = -1 })
      ~step:(fun ~round ~me:_ s nbrs ->
        let s =
          if s.dist < max_int then s
          else begin
            (* adopt the smallest-id neighbor that already has a distance *)
            let candidates =
              List.filter_map
                (fun (u, s') -> if s'.dist < max_int then Some (u, s'.dist) else None)
                nbrs
            in
            match candidates with
            | [] -> s
            | (u0, d0) :: rest ->
              let u, d =
                List.fold_left
                  (fun (bu, bd) (u, d) -> if d < bd || (d = bd && u < bu) then (u, d) else (bu, bd))
                  (u0, d0) rest
              in
              { dist = d + 1; parent = u }
          end
        in
        (s, round + 1 >= bound))
  in
  ( Array.map (fun s -> s.parent) states,
    Array.map (fun s -> if s.dist = max_int then -1 else s.dist) states,
    stats.Runtime.rounds )

(* Validity: parents form a tree reaching the root along decreasing
   distances; distances agree with BFS. *)
let is_bfs_tree g ~root parents dists =
  let expected = Graph.bfs_dist g root in
  let ok = ref (dists.(root) = 0 && parents.(root) = -1) in
  for v = 0 to Graph.n g - 1 do
    if expected.(v) < 0 then ok := !ok && dists.(v) = -1
    else begin
      ok := !ok && dists.(v) = expected.(v);
      if v <> root then
        ok :=
          !ok
          && parents.(v) >= 0
          && Graph.mem_edge g v parents.(v)
          && expected.(parents.(v)) = expected.(v) - 1
    end
  done;
  !ok
