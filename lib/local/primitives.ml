(* Classic LOCAL/distributed primitives on the runtime: leader election
   by extremum flooding and BFS spanning-tree construction. Not used by
   the LLL algorithms themselves (which are the point of this library),
   but standard substrate any distributed-algorithms toolkit ships, and
   additional exercise for the runtime semantics. *)

module Graph = Lll_graph.Graph

(* Elect the minimum id by flooding for [diameter_bound] rounds (LOCAL
   standard: n is a safe bound). Every node ends up knowing the leader's
   id; the leader knows it is the leader. *)
let elect_leader ?(diameter_bound = max_int) ?domains net =
  let n = Network.n net in
  let bound = if diameter_bound = max_int then max 1 n else max 1 diameter_bound in
  let states, stats =
    Runtime.run_full_info ?domains net
      ~init:(fun v -> Network.id net v)
      ~step:(fun ~round ~me:_ s nbrs ->
        let s = List.fold_left (fun acc (_, x) -> min acc x) s nbrs in
        (s, round + 1 >= bound))
  in
  (states, stats.Runtime.rounds)

(* BFS spanning tree rooted at [root]: each node learns its distance and
   a parent (the smallest-id neighbor strictly closer to the root).
   Returns (parent array, -1 for root/unreachable; dist array). *)
type bfs_state = { dist : int; parent : int }

let bfs_tree ?(max_rounds = Runtime.default_max_rounds) ?domains net ~root =
  let n = Network.n net in
  let bound = max 1 n in
  let states, stats =
    Runtime.run_full_info ~max_rounds ?domains net
      ~init:(fun v -> if v = root then { dist = 0; parent = -1 } else { dist = max_int; parent = -1 })
      ~step:(fun ~round ~me:_ s nbrs ->
        let s =
          if s.dist < max_int then s
          else begin
            (* adopt the smallest-id neighbor that already has a distance *)
            let candidates =
              List.filter_map
                (fun (u, s') -> if s'.dist < max_int then Some (u, s'.dist) else None)
                nbrs
            in
            match candidates with
            | [] -> s
            | (u0, d0) :: rest ->
              let u, d =
                List.fold_left
                  (fun (bu, bd) (u, d) -> if d < bd || (d = bd && u < bu) then (u, d) else (bu, bd))
                  (u0, d0) rest
              in
              { dist = d + 1; parent = u }
          end
        in
        (s, round + 1 >= bound))
  in
  ( Array.map (fun s -> s.parent) states,
    Array.map (fun s -> if s.dist = max_int then -1 else s.dist) states,
    stats.Runtime.rounds )

(* Validity: parents form a tree reaching the root along decreasing
   distances; distances agree with BFS. *)
let is_bfs_tree g ~root parents dists =
  let expected = Graph.bfs_dist g root in
  let ok = ref (dists.(root) = 0 && parents.(root) = -1) in
  for v = 0 to Graph.n g - 1 do
    if expected.(v) < 0 then ok := !ok && dists.(v) = -1
    else begin
      ok := !ok && dists.(v) = expected.(v);
      if v <> root then
        ok :=
          !ok
          && parents.(v) >= 0
          && Graph.mem_edge g v parents.(v)
          && expected.(parents.(v)) = expected.(v) - 1
    end
  done;
  !ok
