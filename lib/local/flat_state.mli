(** Record-of-arrays protocol state for the flat LOCAL engine.

    Per-node protocol state split into parallel flat columns: int
    fields, float fields, and an optional boxed payload column for
    protocols that genuinely need heap structure. ['p] is the payload
    type; payload-free protocols leave it polymorphic. *)

type 'p t

val create :
  n:int -> ?int_fields:int -> ?float_fields:int -> ?payload:(int -> 'p) -> unit -> 'p t
(** [create ~n ~int_fields ~float_fields ~payload ()] allocates columns
    for [n] nodes. Int columns start at [0], float columns at [0.];
    [payload] (when given) initializes node [v]'s payload cell to
    [payload v]. Omitting [payload] yields a payload-free state. *)

val n : 'p t -> int

val int_fields : 'p t -> int

val float_fields : 'p t -> int

val has_payload : 'p t -> bool

val get_int : 'p t -> int -> int -> int
(** [get_int t field v] — row [v] of int column [field]. *)

val set_int : 'p t -> int -> int -> int -> unit

val get_float : 'p t -> int -> int -> float

val set_float : 'p t -> int -> int -> float -> unit

val get_payload : 'p t -> int -> 'p

val set_payload : 'p t -> int -> 'p -> unit

val int_column : 'p t -> int -> int array
(** The raw column (not a copy): CSR-aligned, indexable by node id. *)

val float_column : 'p t -> int -> float array

val payload_column : 'p t -> 'p array
(** The raw payload column ([[||]] for payload-free states). *)

val copy : 'p t -> 'p t
(** Fresh columns; payload cells shared as in [Array.copy]. *)

val blit : src:'p t -> dst:'p t -> unit
(** Column-wise overwrite of [dst] with [src] (same shape required). *)
