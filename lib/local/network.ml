(* A communication network for the LOCAL model: an undirected graph whose
   nodes carry globally unique identifiers. Identifiers are what symmetry-
   breaking algorithms (Linial, Cole–Vishkin) consume; they default to the
   node index but can be an arbitrary injective labelling to model
   adversarial id assignments. *)

module Graph = Lll_graph.Graph
module Generators = Lll_graph.Generators

(* [degrees] and [max_degree] are snapshotted off the graph's CSR at
   creation, so network-level degree queries never touch the graph. *)
type t = { graph : Graph.t; ids : int array; degrees : int array; max_degree : int }

let create ?ids graph =
  let n = Graph.n graph in
  let ids = match ids with Some a -> Array.copy a | None -> Array.init n (fun i -> i) in
  if Array.length ids <> n then invalid_arg "Network.create: ids length mismatch";
  let tbl = Hashtbl.create n in
  Array.iter
    (fun id ->
      if Hashtbl.mem tbl id then invalid_arg "Network.create: duplicate id";
      Hashtbl.add tbl id ())
    ids;
  let degrees = Array.init n (Graph.degree graph) in
  { graph; ids; degrees; max_degree = Graph.max_degree graph }

let graph t = t.graph
let n t = Graph.n t.graph
let id t v = t.ids.(v)
let ids t = Array.copy t.ids
let neighbors t v = Graph.neighbors t.graph v
let degree t v = t.degrees.(v)
let max_degree t = t.max_degree

(* Network with ids permuted by a seeded shuffle — an "adversarial"
   relabelling for testing id-dependence of algorithms. *)
let with_shuffled_ids ~seed t =
  let rng = Random.State.make [| seed |] in
  let ids = Array.copy t.ids in
  Generators.shuffle rng ids;
  { t with ids }
