(* A communication network for the LOCAL model: an undirected graph whose
   nodes carry globally unique identifiers. Identifiers are what symmetry-
   breaking algorithms (Linial, Cole–Vishkin) consume; they default to the
   node index but can be an arbitrary injective labelling to model
   adversarial id assignments. *)

module Graph = Lll_graph.Graph
module Generators = Lll_graph.Generators

type t = { graph : Graph.t; ids : int array }

let create ?ids graph =
  let n = Graph.n graph in
  let ids = match ids with Some a -> Array.copy a | None -> Array.init n (fun i -> i) in
  if Array.length ids <> n then invalid_arg "Network.create: ids length mismatch";
  let tbl = Hashtbl.create n in
  Array.iter
    (fun id ->
      if Hashtbl.mem tbl id then invalid_arg "Network.create: duplicate id";
      Hashtbl.add tbl id ())
    ids;
  { graph; ids }

let graph t = t.graph
let n t = Graph.n t.graph
let id t v = t.ids.(v)
let ids t = Array.copy t.ids
let neighbors t v = Graph.neighbors t.graph v
let degree t v = Graph.degree t.graph v
let max_degree t = Graph.max_degree t.graph

(* Network with ids permuted by a seeded shuffle — an "adversarial"
   relabelling for testing id-dependence of algorithms. *)
let with_shuffled_ids ~seed t =
  let rng = Random.State.make [| seed |] in
  let ids = Array.copy t.ids in
  Generators.shuffle rng ids;
  { t with ids }
