(* A minimal deterministic fork-join pool over OCaml 5 [Domain]s.

   The LOCAL model is embarrassingly parallel within a synchronous round:
   every node steps against the same snapshot, so the per-round work is a
   pure data-parallel loop over node indices. This module provides exactly
   that loop. The index range [0, n) is split into [domains] contiguous
   chunks of (nearly) equal size; chunk 0 runs on the calling domain and
   the remaining chunks each run on a freshly spawned domain, joined in
   chunk order. The split depends only on [(domains, n)], never on timing,
   so for a body whose iterations are independent the result is identical
   to the sequential loop — the differential tests in
   [test/test_runtime_par.ml] assert this bit-for-bit on the runtime.

   No domainslib dependency: [Domain.spawn]/[Domain.join] from the stdlib
   are all we need, and spawning a handful of domains per parallel region
   is cheap relative to a round's work at the graph sizes where
   parallelism pays (>= 10^4 nodes). With [domains = 1] (the default on
   single-core hosts) no domain is ever spawned and the loop is a plain
   [for] — the sequential reference path. *)

let recommended () = Domain.recommended_domain_count ()

let default = ref (recommended ())

let default_domains () = !default

let set_default_domains d =
  if d < 1 then invalid_arg "Par.set_default_domains: need >= 1 domain";
  default := d

(* Chunk [j] of [k] over [0, n): indices [j*n/k, (j+1)*n/k). Contiguous,
   disjoint, covering; empty chunks possible only when [k > n]. *)
let chunks ~domains ~n =
  let k = max 1 domains in
  Array.init k (fun j -> (j * n / k, ((j + 1) * n / k) - 1))

(* Run [f lo hi] for every chunk, chunk 0 inline, the rest on spawned
   domains. All domains are joined before returning; if any chunk raised,
   the exception of the lowest-numbered raising chunk is re-raised (a
   deterministic choice, matching the sequential loop's "first index
   raises" behavior at chunk granularity). *)
let fork_join ~domains ~n f =
  let k = min (max 1 domains) (max 1 n) in
  if k <= 1 then f 0 (n - 1)
  else begin
    let bounds = chunks ~domains:k ~n in
    let workers =
      List.init (k - 1) (fun j ->
          let lo, hi = bounds.(j + 1) in
          Domain.spawn (fun () -> f lo hi))
    in
    let first_exn = (try f (fst bounds.(0)) (snd bounds.(0)); None with e -> Some e) in
    let exns =
      List.map (fun d -> try Domain.join d; None with e -> Some e) workers
    in
    match List.filter_map Fun.id (first_exn :: exns) with
    | [] -> ()
    | e :: _ -> raise e
  end

let parallel_for ?domains ~n f =
  if n > 0 then begin
    let domains = match domains with Some d -> max 1 d | None -> !default in
    fork_join ~domains ~n (fun lo hi ->
        for i = lo to hi do
          f i
        done)
  end
