(* Distributed coloring programs on the LOCAL runtime.

   These are genuine message-passing implementations (full-information
   rounds) of Linial's color reduction followed by class-by-class
   reduction to [dmax + 1] colors. All nodes know [n] (an upper bound on
   the ids) and [dmax] — the standard LOCAL assumptions — from which every
   node derives the identical parameter schedule without communication, so
   no global coordination is hidden from the round count. *)

module Graph = Lll_graph.Graph
module Coloring = Lll_graph.Coloring
module Linial = Lll_graph.Linial
module Primes = Lll_graph.Primes

(* The deterministic schedule of (q, t, colors-after) Linial steps starting
   from [m] colors, as derived by every node locally. *)
let schedule ~dmax ~m =
  let rec go m acc =
    let q, t = Linial.choose_params ~dmax ~m in
    let m' = q * q in
    if m' >= m then List.rev acc else go m' ((q, t, m') :: acc)
  in
  go m []

(* One Linial step given parameters (q, t): pick the smallest evaluation
   point at which my polynomial differs from every neighbor's. The array
   form is what the flat runner feeds; the list form is kept as the
   public entry point. *)
let linial_step_arr ~q ~t my_color (nbr_colors : int array) =
  let my_poly = Primes.digits ~base:q ~len:(t + 1) my_color in
  let nbr_polys = Array.map (fun c -> Primes.digits ~base:q ~len:(t + 1) c) nbr_colors in
  let rec find a =
    if a >= q then invalid_arg "Dist_coloring.linial_step: no free point (improper coloring?)"
    else if
      Array.for_all (fun p -> Primes.poly_eval q my_poly a <> Primes.poly_eval q p a) nbr_polys
    then a
    else find (a + 1)
  in
  let a = find 0 in
  (a * q) + Primes.poly_eval q my_poly a

let linial_step ~q ~t my_color nbr_colors =
  linial_step_arr ~q ~t my_color (Array.of_list nbr_colors)

(* The Kuhn-Wattenhofer reduction schedule: starting palette sizes of the
   successive halving phases (each phase costs [dmax + 1] rounds and maps
   [m] colors to [ceil(m / (2*(dmax+1))) * (dmax+1)]). Derivable by every
   node from [m_star] and [dmax] without communication. *)
let kw_schedule ~dmax ~m =
  let w = dmax + 1 in
  let rec go m acc = if m <= w then List.rev acc else go (((m + (2 * w) - 1) / (2 * w)) * w) (m :: acc) in
  go m []

(* Distributed (dmax+1)-coloring: Linial phase (schedule length rounds)
   followed by Kuhn-Wattenhofer block reduction ([dmax+1] rounds per
   halving phase). Initial colors are the node ids (assumed < id_bound).
   Returns the coloring and the LOCAL round count, which is
   O(log* id_bound + dmax * log(dmax)) past the Linial fixpoint. *)
let color ?(id_bound = max_int) ?domains ?(metrics = Metrics.disabled) net =
  let g = Network.graph net in
  let n = Graph.n g in
  if n = 0 then ([||], 0)
  else begin
    let dmax = Graph.max_degree g in
    let bound = if id_bound = max_int then n else id_bound in
    let bound = max bound (1 + Array.fold_left max 0 (Network.ids net)) in
    let sched = schedule ~dmax ~m:bound in
    let sched_arr = Array.of_list sched in
    let linial_rounds = Array.length sched_arr in
    let m_star = if linial_rounds = 0 then bound else (fun (_, _, m) -> m) sched_arr.(linial_rounds - 1) in
    let w = dmax + 1 in
    let kw_phases = Array.of_list (kw_schedule ~dmax ~m:m_star) in
    let reduction_rounds = w * Array.length kw_phases in
    let total = linial_rounds + reduction_rounds in
    (* whole node state is one int column (the color), so the protocol
       runs straight on the flat engine: neighbor colors are read off
       the [prev] snapshot column at the CSR slice indices. KW rounds
       scan the slice in place — no neighbor array is ever materialised;
       only the rare Linial rounds (O(log* n) of them) build one for the
       polynomial step. *)
    if total = 0 then (Array.init n (fun v -> Network.id net v), 0)
    else begin
      let state = Flat_state.create ~n ~int_fields:1 () in
      let col0 = Flat_state.int_column state 0 in
      for v = 0 to n - 1 do
        col0.(v) <- Network.id net v
      done;
      let step ~round ~me ~prev ~cur ~nbrs =
        let colors = Flat_state.int_column prev 0 in
        let color = colors.(me) in
        let color' =
          if round < linial_rounds then begin
            let q, t, _ = sched_arr.(round) in
            linial_step_arr ~q ~t color (Array.map (fun u -> colors.(u)) nbrs)
          end
          else begin
            (* KW reduction: phase k, offset j *)
            let r = round - linial_rounds in
            let k = r / w and j = r mod w in
            ignore kw_phases.(k);
            let block_size = 2 * w in
            let base = color / block_size * block_size in
            let color =
              if color - base = w + j then begin
                (* recolor into the block's low window: mark the window
                   colors used by neighbors in a [w]-slot table and take the
                   first free slot (at most [dmax] neighbors < [w] slots, so
                   one is always free) — no sort, no dedup *)
                let used = Array.make w false in
                Array.iter
                  (fun u ->
                    let c = colors.(u) in
                    if c >= base && c < base + w then used.(c - base) <- true)
                  nbrs;
                let rec free k = if used.(k) then free (k + 1) else base + k in
                free 0
              end
              else color
            in
            (* end of phase: compact blocks (local renaming, no cost) *)
            if j = w - 1 then (color / block_size * w) + (color mod block_size) else color
          end
        in
        Flat_state.set_int cur 0 me color';
        round + 1 >= total
      in
      let st, stats = Runtime.run_flat ?domains ~metrics net ~state ~step in
      (Flat_state.int_column st 0, stats.Runtime.rounds)
    end
  end

(* Distributed 2-hop coloring with at most [dmax^2 + 1] colors, obtained by
   running [color] on the square graph. One round on the square graph is
   simulated by two real rounds, which we account for. This is our
   substitute for the [FHK16] conflict-coloring subroutine of
   Corollary 1.4 (see DESIGN.md). *)
let two_hop_color ?domains ?(metrics = Metrics.disabled) net =
  let g = Network.graph net in
  let sq = Graph.square g in
  let net_sq = Network.create ~ids:(Network.ids net) sq in
  let coloring, rounds_sq = color ?domains ~metrics net_sq in
  (coloring, 2 * rounds_sq)
