(** Maximal independent sets: Luby's randomized LOCAL algorithm plus a
    sequential oracle. *)

module Graph = Lll_graph.Graph

val luby :
  ?max_rounds:int -> ?domains:int -> ?metrics:Metrics.sink -> seed:int -> Network.t -> bool array * int
(** [(in_mis, rounds)]; O(log n) rounds w.h.p. Randomness is a
    deterministic function of [(seed, node id, phase)]. *)

val greedy : Graph.t -> bool array
(** Sequential greedy MIS in id order. *)

val is_mis : Graph.t -> bool array -> bool
(** Independent and maximal (dominating). *)
