(** Maximal independent sets: Luby's randomized LOCAL algorithm plus a
    sequential oracle. *)

module Graph = Lll_graph.Graph

val luby :
  ?max_rounds:int -> ?domains:int -> ?metrics:Metrics.sink -> seed:int -> Network.t -> bool array * int
(** [(in_mis, rounds)]; O(log n) rounds w.h.p. Randomness is a
    deterministic function of [(seed, node id, phase)]. Runs on the flat
    record-of-arrays engine ({!Runtime.run_flat}): one int column for
    status, one float column for priority. *)

val luby_boxed :
  ?max_rounds:int -> ?domains:int -> ?metrics:Metrics.sink -> seed:int -> Network.t -> bool array * int
(** The boxed-record original on the retired boxed engine — ablation
    baseline only; agrees with {!luby} bit-for-bit. *)

val greedy : Graph.t -> bool array
(** Sequential greedy MIS in id order. *)

val is_mis : Graph.t -> bool array -> bool
(** Independent and maximal (dominating). *)
