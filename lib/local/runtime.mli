(** Synchronous LOCAL-model execution engine with round accounting,
    domain-parallel round execution and optional round-level metrics.

    Each round, the non-halted nodes are stepped in parallel across
    [domains] OCaml 5 domains (default {!Par.default_domains}, i.e. the
    recommended domain count of the machine) against an immutable
    snapshot of the previous round; all order-sensitive effects (message
    delivery, halt bookkeeping) are committed by a sequential sweep in
    node order afterwards, so results are identical for every domain
    count — [~domains:1] is the sequential reference engine. *)

exception Round_limit_exceeded of int

type ('s, 'm) step_result = { state : 's; send : (int * 'm) list; halt : bool }

type stats = {
  rounds : int;
  messages : int;
  per_round : Metrics.round_record list;
      (** One record per round when a metrics sink was passed; [[]]
          otherwise. *)
}

val default_max_rounds : int

val run :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  init:(int -> 's) ->
  step:(round:int -> me:int -> 's -> (int * 'm) list -> ('s, 'm) step_result) ->
  's array * stats
(** Message-passing interface. Each round, every non-halted node consumes
    the messages addressed to it in the previous round ([(sender, msg)]
    pairs) and produces a new state, outgoing messages ([(neighbor, msg)]),
    and a halt flag. Sending to a non-neighbor raises [Invalid_argument]
    (checked against a precomputed per-node neighbor index); exceeding
    [max_rounds] raises {!Round_limit_exceeded}. The step function must be
    safe to call concurrently for distinct nodes (pure up to per-call
    local state), which every synchronous-round protocol is. *)

val run_full_info :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  init:(int -> 's) ->
  step:(round:int -> me:int -> 's -> (int * 's) list -> 's * bool) ->
  's array * stats
(** Full-information rounds: each step sees the previous-round states of
    all neighbors — equivalent to LOCAL because messages are unbounded. *)

val run_full_info_flat :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  init:(int -> int) ->
  step:(round:int -> me:int -> int -> int array -> int * bool) ->
  int array * stats
(** {!run_full_info} specialised to single-integer node states
    (colorings, floods): states live in an int array and each step sees
    its neighbors' states as an int array, in ascending neighbor order —
    no per-round assoc-list allocation. Same semantics and determinism
    contract as {!run_full_info} restricted to int states. *)

val gather_balls :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  radius:int ->
  value:(int -> 'a) ->
  (int * 'a) list array * stats
(** Flood for [radius] rounds so each node learns the [(node, value)]
    pairs in its radius-[radius] ball. *)
