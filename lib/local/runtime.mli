(** Synchronous LOCAL-model execution engine with round accounting,
    domain-parallel round execution and optional round-level metrics.

    Each round, the non-halted nodes are stepped in parallel across
    [domains] OCaml 5 domains (default {!Par.default_domains}, i.e. the
    recommended domain count of the machine) against an immutable
    snapshot of the previous round; all order-sensitive effects (message
    delivery, halt bookkeeping) are committed by a sequential sweep in
    node order afterwards, so results are identical for every domain
    count — [~domains:1] is the sequential reference engine. *)

exception Round_limit_exceeded of int

type ('s, 'm) step_result = { state : 's; send : (int * 'm) list; halt : bool }

type stats = {
  rounds : int;
  messages : int;
  per_round : Metrics.round_record list;
      (** One record per round when a metrics sink was passed; [[]]
          otherwise. *)
}

val default_max_rounds : int

val run :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  init:(int -> 's) ->
  step:(round:int -> me:int -> 's -> (int * 'm) list -> ('s, 'm) step_result) ->
  's array * stats
(** Message-passing interface. Each round, every non-halted node consumes
    the messages addressed to it in the previous round ([(sender, msg)]
    pairs) and produces a new state, outgoing messages ([(neighbor, msg)]),
    and a halt flag. Sending to a non-neighbor raises [Invalid_argument]
    (checked against a precomputed per-node neighbor index); exceeding
    [max_rounds] raises {!Round_limit_exceeded}. The step function must be
    safe to call concurrently for distinct nodes (pure up to per-call
    local state), which every synchronous-round protocol is. *)

val run_flat :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  state:'p Flat_state.t ->
  step:
    (round:int ->
    me:int ->
    prev:'p Flat_state.t ->
    cur:'p Flat_state.t ->
    nbrs:int array ->
    bool) ->
  'p Flat_state.t * stats
(** The generalized full-information engine over record-of-arrays states
    — the house engine every hot protocol runs on. [state] holds the
    initial columns and is mutated in place; [prev] is a double-buffered
    snapshot refreshed by column blits at the top of each round. A step
    may read any row of [prev] (its neighbors' ids arrive as the
    CSR-aligned slice [nbrs], in ascending order) but must write only
    row [me] of [cur]; it returns its halt request, committed by a
    sequential sweep in node order. Results are bit-identical for every
    [domains] value. Rows a step does not write carry over from the
    previous round. Exceeding [max_rounds] raises
    {!Round_limit_exceeded}. *)

val run_full_info :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  init:(int -> 's) ->
  step:(round:int -> me:int -> 's -> (int * 's) list -> 's * bool) ->
  's array * stats
(** Full-information rounds: each step sees the previous-round states of
    all neighbors — equivalent to LOCAL because messages are unbounded.
    Compatibility shim over {!run_flat} (payload-column protocol, assoc
    lists materialised per step) kept for tests and examples; hot
    protocols use {!run_flat}. *)

val run_full_info_boxed :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  init:(int -> 's) ->
  step:(round:int -> me:int -> 's -> (int * 's) list -> 's * bool) ->
  's array * stats
(** The retired boxed engine behind the historical {!run_full_info}
    semantics, kept verbatim as an ablation baseline for the bench
    flat-vs-boxed rows and as the reference the shim is tested
    against. Do not use in new code. *)

val run_full_info_flat :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  init:(int -> int) ->
  step:(round:int -> me:int -> int -> int array -> int * bool) ->
  int array * stats
(** {!run_full_info} specialised to single-integer node states
    (colorings, floods): states live in an int array and each step sees
    its neighbors' states as an int array, in ascending neighbor order —
    no per-round assoc-list allocation. Same semantics and determinism
    contract as {!run_full_info} restricted to int states. Implemented
    as a one-int-column wrapper over {!run_flat}. *)

val gather_balls :
  ?max_rounds:int ->
  ?domains:int ->
  ?metrics:Metrics.sink ->
  Network.t ->
  radius:int ->
  value:(int -> 'a) ->
  (int * 'a) list array * stats
(** Flood for [radius] rounds so each node learns the [(node, value)]
    pairs in its radius-[radius] ball. *)
