(** Synchronous LOCAL-model execution engine with round accounting. *)

exception Round_limit_exceeded of int

type ('s, 'm) step_result = { state : 's; send : (int * 'm) list; halt : bool }

type stats = { rounds : int; messages : int }

val default_max_rounds : int

val run :
  ?max_rounds:int ->
  Network.t ->
  init:(int -> 's) ->
  step:(round:int -> me:int -> 's -> (int * 'm) list -> ('s, 'm) step_result) ->
  's array * stats
(** Message-passing interface. Each round, every non-halted node consumes
    the messages addressed to it in the previous round ([(sender, msg)]
    pairs) and produces a new state, outgoing messages ([(neighbor, msg)]),
    and a halt flag. Sending to a non-neighbor raises [Invalid_argument];
    exceeding [max_rounds] raises {!Round_limit_exceeded}. *)

val run_full_info :
  ?max_rounds:int ->
  Network.t ->
  init:(int -> 's) ->
  step:(round:int -> me:int -> 's -> (int * 's) list -> 's * bool) ->
  's array * stats
(** Full-information rounds: each step sees the previous-round states of
    all neighbors — equivalent to LOCAL because messages are unbounded. *)

val gather_balls :
  ?max_rounds:int ->
  Network.t ->
  radius:int ->
  value:(int -> 'a) ->
  (int * 'a) list array * stats
(** Flood for [radius] rounds so each node learns the [(node, value)]
    pairs in its radius-[radius] ball. *)
