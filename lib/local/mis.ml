(* Luby's randomized maximal independent set in the LOCAL model.

   A classic O(log n)-round randomized symmetry-breaking primitive; here
   both as additional coverage for the runtime and as a reference point
   for the paper's discussion of derandomization (weak splitting is
   P-SLOCAL-complete precisely because problems like MIS reduce to it).

   Each phase costs two communication rounds: (1) every active node draws
   a random priority and compares with its active neighbors' priorities —
   strict local minima join the MIS; (2) nodes adjacent to fresh MIS
   members retire. Randomness is derived deterministically from
   [seed, node id, phase], so runs are reproducible and the simulated
   exchange stays honest. *)

module Graph = Lll_graph.Graph

type status = Active | In_mis | Out

type state = { status : status; priority : float }

let priority ~seed ~id ~phase =
  let rng = Random.State.make [| seed; id; phase |] in
  Random.State.float rng 1.0

let luby ?(max_rounds = 10_000) ?domains ?metrics ~seed net =
  let step ~round ~me s nbrs =
    let phase = round / 2 in
    if round mod 2 = 0 then begin
      (* draw priorities (statuses of neighbors reflect last phase) *)
      match s.status with
      | Active -> ({ s with priority = priority ~seed ~id:(Network.id net me) ~phase }, false)
      | _ -> (s, false)
    end
    else begin
      let s' =
        match s.status with
        | Active ->
          (* retire FIRST if a neighbor already made it into the MIS —
             otherwise a node could join next to a fresh MIS member *)
          if List.exists (fun (_, n) -> n.status = In_mis) nbrs then { s with status = Out }
          else begin
            let active_nbrs = List.filter (fun (_, n) -> n.status = Active) nbrs in
            if List.for_all (fun (_, n) -> s.priority < n.priority) active_nbrs then
              { s with status = In_mis }
            else s
          end
        | _ -> s
      in
      (* halting: a node is done when it has decided and (for Out nodes)
         its decision is stable; staying one extra phase is harmless and
         keeps the rule simple: halt when self and all neighbors are
         decided *)
      let decided n = n.status <> Active in
      (s', decided s' && List.for_all (fun (_, n) -> decided n) nbrs)
    end
  in
  let states, stats =
    Runtime.run_full_info ~max_rounds ?domains ?metrics net
      ~init:(fun _ -> { status = Active; priority = 0. })
      ~step
  in
  (Array.map (fun s -> s.status = In_mis) states, stats.Runtime.rounds)

(* Sequential greedy MIS (baseline and test oracle). *)
let greedy g =
  let n = Graph.n g in
  let in_mis = Array.make n false in
  let blocked = Array.make n false in
  for v = 0 to n - 1 do
    if not blocked.(v) then begin
      in_mis.(v) <- true;
      Graph.iter_adj g v (fun u _ -> blocked.(u) <- true);
      blocked.(v) <- true
    end
  done;
  in_mis

(* Validity: independent and maximal. *)
let is_mis g in_mis =
  let independent =
    Graph.fold_edges (fun ok _ u v -> ok && not (in_mis.(u) && in_mis.(v))) true g
  in
  let maximal =
    Array.for_all Fun.id
      (Array.init (Graph.n g) (fun v ->
           in_mis.(v) || Graph.fold_adj g v ~init:false ~f:(fun acc u _ -> acc || in_mis.(u))))
  in
  independent && maximal
