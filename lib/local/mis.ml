(* Luby's randomized maximal independent set in the LOCAL model.

   A classic O(log n)-round randomized symmetry-breaking primitive; here
   both as additional coverage for the runtime and as a reference point
   for the paper's discussion of derandomization (weak splitting is
   P-SLOCAL-complete precisely because problems like MIS reduce to it).

   Each phase costs two communication rounds: (1) every active node draws
   a random priority and compares with its active neighbors' priorities —
   strict local minima join the MIS; (2) nodes adjacent to fresh MIS
   members retire. Randomness is derived deterministically from
   [seed, node id, phase], so runs are reproducible and the simulated
   exchange stays honest. *)

module Graph = Lll_graph.Graph

type status = Active | In_mis | Out

type state = { status : status; priority : float }

let priority ~seed ~id ~phase =
  let rng = Random.State.make [| seed; id; phase |] in
  Random.State.float rng 1.0

(* Status encoding in the flat int column. *)
let active = 0

let in_mis = 1

let out = 2

(* Flat-engine Luby: status lives in an int column, priority in a float
   column — one cache-friendly row per node, zero per-round allocation.
   Reads go against the [prev] snapshot in CSR slice order, exactly the
   traversal order of the boxed version's assoc lists, so the two
   engines agree bit-for-bit (asserted in test_runtime_par.ml). *)
let luby ?(max_rounds = 10_000) ?domains ?metrics ~seed net =
  let n = Network.n net in
  let state = Flat_state.create ~n ~int_fields:1 ~float_fields:1 () in
  let step ~round ~me ~prev ~cur ~nbrs =
    let phase = round / 2 in
    let status = Flat_state.get_int prev 0 me in
    if round mod 2 = 0 then begin
      (* draw priorities (statuses of neighbors reflect last phase) *)
      if status = active then
        Flat_state.set_float cur 0 me (priority ~seed ~id:(Network.id net me) ~phase);
      false
    end
    else begin
      let statuses = Flat_state.int_column prev 0 in
      let status' =
        if status <> active then status
        else if Array.exists (fun u -> statuses.(u) = in_mis) nbrs then out
          (* retire FIRST if a neighbor already made it into the MIS —
             otherwise a node could join next to a fresh MIS member *)
        else begin
          let my_p = Flat_state.get_float prev 0 me in
          let priorities = Flat_state.float_column prev 0 in
          let local_min = ref true in
          Array.iter
            (fun u -> if statuses.(u) = active && not (my_p < priorities.(u)) then local_min := false)
            nbrs;
          if !local_min then in_mis else active
        end
      in
      Flat_state.set_int cur 0 me status';
      (* halting: a node is done when it has decided and (for Out nodes)
         its decision is stable; staying one extra phase is harmless and
         keeps the rule simple: halt when self and all neighbors are
         decided *)
      status' <> active && Array.for_all (fun u -> statuses.(u) <> active) nbrs
    end
  in
  let st, stats = Runtime.run_flat ~max_rounds ?domains ?metrics net ~state ~step in
  let statuses = Flat_state.int_column st 0 in
  (Array.map (fun s -> s = in_mis) statuses, stats.Runtime.rounds)

(* The boxed-record original, kept as the ablation/reference
   implementation for the flat-vs-boxed differential tests and bench
   rows. *)
let luby_boxed ?(max_rounds = 10_000) ?domains ?metrics ~seed net =
  let step ~round ~me s nbrs =
    let phase = round / 2 in
    if round mod 2 = 0 then begin
      (* draw priorities (statuses of neighbors reflect last phase) *)
      match s.status with
      | Active -> ({ s with priority = priority ~seed ~id:(Network.id net me) ~phase }, false)
      | _ -> (s, false)
    end
    else begin
      let s' =
        match s.status with
        | Active ->
          (* retire FIRST if a neighbor already made it into the MIS —
             otherwise a node could join next to a fresh MIS member *)
          if List.exists (fun (_, n) -> n.status = In_mis) nbrs then { s with status = Out }
          else begin
            let active_nbrs = List.filter (fun (_, n) -> n.status = Active) nbrs in
            if List.for_all (fun (_, n) -> s.priority < n.priority) active_nbrs then
              { s with status = In_mis }
            else s
          end
        | _ -> s
      in
      (* halting: a node is done when it has decided and (for Out nodes)
         its decision is stable; staying one extra phase is harmless and
         keeps the rule simple: halt when self and all neighbors are
         decided *)
      let decided n = n.status <> Active in
      (s', decided s' && List.for_all (fun (_, n) -> decided n) nbrs)
    end
  in
  let states, stats =
    Runtime.run_full_info_boxed ~max_rounds ?domains ?metrics net
      ~init:(fun _ -> { status = Active; priority = 0. })
      ~step
  in
  (Array.map (fun s -> s.status = In_mis) states, stats.Runtime.rounds)

(* Sequential greedy MIS (baseline and test oracle). *)
let greedy g =
  let n = Graph.n g in
  let in_mis = Array.make n false in
  let blocked = Array.make n false in
  for v = 0 to n - 1 do
    if not blocked.(v) then begin
      in_mis.(v) <- true;
      Graph.iter_adj g v (fun u _ -> blocked.(u) <- true);
      blocked.(v) <- true
    end
  done;
  in_mis

(* Validity: independent and maximal. *)
let is_mis g in_mis =
  let independent =
    Graph.fold_edges (fun ok _ u v -> ok && not (in_mis.(u) && in_mis.(v))) true g
  in
  let maximal =
    Array.for_all Fun.id
      (Array.init (Graph.n g) (fun v ->
           in_mis.(v) || Graph.fold_adj g v ~init:false ~f:(fun acc u _ -> acc || in_mis.(u))))
  in
  independent && maximal
