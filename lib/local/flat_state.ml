(* Record-of-arrays protocol state for the flat LOCAL engine.

   A protocol's per-node state is split into parallel flat columns:
   [int_fields] int arrays, [float_fields] float arrays, and an optional
   boxed [payload] column for protocols whose state genuinely needs heap
   structure (gossip maps, gathered balls). Field-major layout keeps the
   hot engines allocation-free per round — snapshotting a state is a
   handful of [Array.blit]s instead of one boxed record per node — and
   lets a step function read a neighbor's field straight out of a column
   at the CSR-aligned node index.

   Columns are exposed read-write: the runtime's determinism contract
   (see Runtime.run_flat) is that a step writes only its own row of the
   current buffer and reads anything from the snapshot buffer. *)

type 'p t = {
  n : int;
  ints : int array array;  (* ints.(field).(node) *)
  floats : float array array;  (* floats.(field).(node) *)
  payload : 'p array;  (* length n, or 0 when the protocol is payload-free *)
}

let create ~n ?(int_fields = 0) ?(float_fields = 0) ?payload () =
  if n < 0 then invalid_arg "Flat_state.create: negative n";
  {
    n;
    ints = Array.init int_fields (fun _ -> Array.make n 0);
    floats = Array.init float_fields (fun _ -> Array.make n 0.);
    payload = (match payload with None -> [||] | Some init -> Array.init n init);
  }

let n t = t.n

let int_fields t = Array.length t.ints

let float_fields t = Array.length t.floats

let has_payload t = Array.length t.payload > 0

let get_int t f v = t.ints.(f).(v)

let set_int t f v x = t.ints.(f).(v) <- x

let get_float t f v = t.floats.(f).(v)

let set_float t f v x = t.floats.(f).(v) <- x

let get_payload t v = t.payload.(v)

let set_payload t v x = t.payload.(v) <- x

let int_column t f = t.ints.(f)

let float_column t f = t.floats.(f)

let payload_column t = t.payload

(* Deep copy with fresh columns (payload cells are shared, as in
   [Array.copy]) — used by the runtime to seed its snapshot buffer. *)
let copy t =
  {
    n = t.n;
    ints = Array.map Array.copy t.ints;
    floats = Array.map Array.copy t.floats;
    payload = Array.copy t.payload;
  }

(* Column-wise blit of every field from [src] into [dst]: the per-round
   snapshot. Shapes must match ([copy] of the same state). *)
let blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Flat_state.blit: size mismatch";
  Array.iteri (fun f col -> Array.blit col 0 dst.ints.(f) 0 src.n) src.ints;
  Array.iteri (fun f col -> Array.blit col 0 dst.floats.(f) 0 src.n) src.floats;
  if Array.length src.payload > 0 then Array.blit src.payload 0 dst.payload 0 src.n
