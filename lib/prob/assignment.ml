(* Partial assignments of values to variables, indexed by variable id.
   [None] means "not yet fixed". The fixers of the paper extend a partial
   assignment one variable at a time and never revisit a fixed variable. *)

type t = int option array

let empty n : t = Array.make n None

let copy (t : t) : t = Array.copy t

let get (t : t) id = t.(id)

let value_exn (t : t) id =
  match t.(id) with Some v -> v | None -> invalid_arg "Assignment.value_exn: variable not fixed"

let is_fixed (t : t) id = t.(id) <> None

let set (t : t) id v : t =
  let t = Array.copy t in
  t.(id) <- Some v;
  t

let set_inplace (t : t) id v = t.(id) <- Some v

let num_fixed (t : t) = Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 t

let is_complete (t : t) = Array.for_all (fun o -> o <> None) t

let of_list n l : t =
  let t = empty n in
  List.iter (fun (id, v) -> t.(id) <- Some v) l;
  t

let to_list (t : t) =
  let acc = ref [] in
  Array.iteri (fun id o -> match o with Some v -> acc := (id, v) :: !acc | None -> ()) t;
  List.rev !acc

let pp fmt (t : t) =
  Format.fprintf fmt "{";
  Array.iteri
    (fun id o -> match o with Some v -> Format.fprintf fmt " x%d=%d" id v | None -> ())
    t;
  Format.fprintf fmt " }"
