(** Partial assignments of values to variables (indexed by variable id). *)

type t = int option array

val empty : int -> t
val copy : t -> t
val get : t -> int -> int option
val value_exn : t -> int -> int
val is_fixed : t -> int -> bool

val set : t -> int -> int -> t
(** Functional update (copies). *)

val set_inplace : t -> int -> int -> unit
val num_fixed : t -> int
val is_complete : t -> bool
val of_list : int -> (int * int) list -> t
val to_list : t -> (int * int) list
val pp : Format.formatter -> t -> unit
