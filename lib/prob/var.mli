(** Finite discrete random variables with exact rational distributions.

    Values are indices [0 .. arity-1]; all probabilities are strictly
    positive and sum to exactly 1. *)

module Rat = Lll_num.Rat

type t

val make : id:int -> name:string -> Rat.t array -> t
(** @raise Invalid_argument if the distribution is empty, has a
    non-positive entry, or does not sum to 1. *)

val uniform : id:int -> name:string -> int -> t
(** Uniform distribution on [k >= 1] values. *)

val bernoulli : id:int -> name:string -> Rat.t -> t
(** Two values: [0] with probability [1-p], [1] with probability [p];
    requires [0 < p < 1]. *)

val id : t -> int
val name : t -> string
val arity : t -> int
val prob : t -> int -> Rat.t
val probs : t -> Rat.t array
val pp : Format.formatter -> t -> unit
