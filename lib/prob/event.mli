(** Bad events: a variable scope plus a predicate on the scope's values. *)

type t

val make : id:int -> name:string -> scope:int array -> ((int -> int) -> bool) -> t
(** The predicate receives a lookup function valid on the (deduplicated,
    sorted) scope. *)

val id : t -> int
val name : t -> string

val scope : t -> int array
(** Sorted distinct variable ids. *)

val depends_on : t -> int -> bool

val pred_holds : t -> (int -> int) -> bool
(** Apply the predicate to an explicit lookup (exact enumeration uses
    this). *)

val holds : t -> Assignment.t -> bool
(** Evaluate the predicate; all scope variables must be fixed.
    @raise Invalid_argument if the predicate probes outside its scope or a
    scope variable is unfixed. *)

val never : id:int -> name:string -> t
(** The empty-scope event that never occurs (the paper's "virtual third
    event" for padding rank-2 variables). *)

val all_equal : id:int -> name:string -> scope:int array -> t
(** Occurs iff all scope variables carry the same value (e.g. monochromatic
    constraint violations). *)

val all_value : id:int -> name:string -> scope:int array -> value:int -> t
(** Occurs iff every scope variable equals [value] (e.g. "all edges point
    at me" in sinkless orientation). *)

val of_bad_set : id:int -> name:string -> scope:int array -> int list list -> t
(** Occurs exactly on the listed value tuples (in scope order). *)

val conj : id:int -> name:string -> t -> t -> t
(** Occurs iff both operands occur; scope is the union. *)

val disj : id:int -> name:string -> t -> t -> t
val negate : id:int -> name:string -> t -> t

val pp : Format.formatter -> t -> unit
