(** Bad events: a variable scope plus a predicate on the scope's values.

    Closures are the authoring API; {!compile} turns an event into plain
    data — a weighted satisfying-assignment table — against the
    distributions of its scope variables. Tables are what {!Space} uses
    for fast (and still exact) conditional probabilities, and what the
    instance serializer writes out. *)

type t

type table = {
  tscope : int array;  (** the event's scope (sorted distinct ids) *)
  arities : int array;  (** arity of each scope variable, by position *)
  strides : int array;  (** mixed-radix: code = Σ value_i · strides.(i) *)
  total : int;  (** product of arities *)
  codes : int array;  (** satisfying row codes, strictly increasing *)
  weights : Lll_num.Rat.t array;  (** exact joint probability per row *)
  sat : Bytes.t;  (** dense membership bitmap over all [total] codes *)
}
(** A compiled event. The weights are exact rationals computed from the
    variable distributions the table was compiled against, so any sum of
    rows equals the corresponding enumerated probability in ℚ. *)

val make : id:int -> name:string -> scope:int array -> ((int -> int) -> bool) -> t
(** The predicate receives a lookup function valid on the (deduplicated,
    sorted) scope. *)

val id : t -> int
val name : t -> string

val scope : t -> int array
(** Sorted distinct variable ids. *)

val depends_on : t -> int -> bool

val pred_holds : t -> (int -> int) -> bool
(** Apply the predicate to an explicit lookup (exact enumeration uses
    this). *)

val holds : t -> Assignment.t -> bool
(** Evaluate the predicate; all scope variables must be fixed.
    @raise Invalid_argument if the predicate probes outside its scope or a
    scope variable is unfixed. *)

val compile :
  arity_of:(int -> int) ->
  prob_of:(int -> int -> Lll_num.Rat.t) ->
  ?max_rows:int ->
  t ->
  table option
(** Enumerate the full scope of the event once and record every satisfying
    tuple with its exact joint probability. [arity_of id] and
    [prob_of id value] describe the scope variables' distributions.
    Returns [None] when the scope product exceeds [max_rows]
    (default {!default_max_rows}) — callers fall back to on-the-fly
    enumeration. *)

val default_max_rows : int
(** Table-size cap for {!compile}: [2^20] rows. *)

val of_table :
  id:int ->
  name:string ->
  scope:int array ->
  arities:int array ->
  codes:int array ->
  weights:Lll_num.Rat.t array ->
  t * table
(** Rebuild an event and its compiled table from stored parts (the
    binary instance loader). Strides, total and the sat bitmap are
    re-derived; the event's predicate is the rebuilt bitmap, so solving
    under either backend matches the original event. Validates scope
    order, arity positivity, code range/order and weight positivity.
    @raise Invalid_argument on any violation. *)

val value_at : table -> pos:int -> code:int -> int
(** Value of the scope variable at position [pos] in the tuple encoded by
    [code]. *)

val table_mem : table -> int -> bool
(** Does the complete scope tuple encoded by the code satisfy the event?
    O(1) bitmap lookup. *)

val scope_pos : table -> int -> int
(** Position of a variable id in the compiled scope ([-1] when absent). *)

val code_of : table -> (int -> int) -> int
(** Mixed-radix code of a complete scope valuation given by the lookup. *)

val never : id:int -> name:string -> t
(** The empty-scope event that never occurs (the paper's "virtual third
    event" for padding rank-2 variables). *)

val all_equal : id:int -> name:string -> scope:int array -> t
(** Occurs iff all scope variables carry the same value (e.g. monochromatic
    constraint violations). *)

val all_value : id:int -> name:string -> scope:int array -> value:int -> t
(** Occurs iff every scope variable equals [value] (e.g. "all edges point
    at me" in sinkless orientation). *)

val of_bad_set : id:int -> name:string -> scope:int array -> int list list -> t
(** Occurs exactly on the listed value tuples (in scope order). *)

val conj : id:int -> name:string -> t -> t -> t
(** Occurs iff both operands occur; scope is the union. *)

val disj : id:int -> name:string -> t -> t -> t
val negate : id:int -> name:string -> t -> t

val pp : Format.formatter -> t -> unit
