(** Product probability spaces with exact conditional probabilities.

    The space of an LLL instance: independent discrete variables; event
    probabilities conditioned on a partial assignment are computed exactly
    (rationals) by enumerating the unfixed scope variables. *)

module Rat = Lll_num.Rat

type t

val create : Var.t array -> t
(** Variable ids must equal their array index. *)

val num_vars : t -> int
val var : t -> int -> Var.t
val vars : t -> Var.t array

val prob : t -> Event.t -> fixed:Assignment.t -> Rat.t
(** Exact [Pr[e | fixed]]. *)

val prob_vector : t -> Event.t -> fixed:Assignment.t -> var:int -> Rat.t array * Rat.t
(** [(after, before)]: [after.(y) = Pr[e | fixed, var=y]] for every value
    [y] of [var], and [before = Pr[e | fixed]], computed in a single
    enumeration of the unfixed scope. [var] must be unfixed. *)

val inc : t -> Event.t -> fixed:Assignment.t -> var:int -> value:int -> Rat.t
(** The paper's [Inc(e, value)]:
    [Pr[e | fixed, var=value] / Pr[e | fixed]], or [0] when
    [Pr[e | fixed] = 0]. *)

val fold_scope_assignments :
  t -> Event.t -> Assignment.t -> ('a -> Rat.t -> (int -> int) -> 'a) -> 'a -> 'a
(** Fold over the joint values of the unfixed scope variables of an event;
    the callback receives the joint probability and a scope lookup. *)

val sample_unfixed : t -> Random.State.t -> Assignment.t -> Assignment.t
(** Randomly complete a partial assignment (used by Moser–Tardos). *)

val resample : t -> Random.State.t -> Assignment.t -> int list -> Assignment.t
(** Resample exactly the listed variables. *)
