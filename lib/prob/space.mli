(** Product probability spaces with exact conditional probabilities.

    The space of an LLL instance: independent discrete variables; event
    probabilities conditioned on a partial assignment are computed
    exactly (rationals), either by enumerating the unfixed scope
    variables through the event's predicate ([Enum]) or by summing
    consistent rows of the event's compiled weighted table ([Table]).
    The two backends are exactly equal in ℚ — the table rows carry
    full-scope joint probabilities, so a consistent-row sum divided by
    the fixed part's probability recovers the enumerated sum term for
    term (and [Rat] normalizes, so equality is structural). *)

module Rat = Lll_num.Rat

type t

type backend = Enum | Table
(** How conditional probabilities are computed. [Table] (the default)
    uses compiled event tables when available and silently falls back to
    enumeration otherwise; [Enum] forces the original enumeration path
    everywhere (reference for differential tests and benchmarks). *)

val set_backend : backend -> unit
val backend : unit -> backend

val with_backend : backend -> (unit -> 'a) -> 'a
(** Run a thunk under a backend, restoring the previous one afterwards
    (also on exceptions). *)

val create : Var.t array -> t
(** Variable ids must equal their array index. *)

val num_vars : t -> int
val var : t -> int -> Var.t
val vars : t -> Var.t array

val compile_events : t -> Event.t array -> unit
(** Compile and cache a weighted table ({!Event.compile}) for each event
    whose scope is small enough to tabulate. [Instance.create] calls
    this once; further calls overwrite the cache slots. *)

val compile_event : t -> Event.t -> unit

val install_table : t -> Event.t -> Event.table -> unit
(** Cache a pre-built table for an event instead of recompiling (the
    binary instance loader's fast path). The table must physically share
    the event's scope array (as {!Event.of_table} guarantees); the
    caller vouches that its weights match this space's distributions. *)

val compiled_table : t -> Event.t -> Event.table option
(** The cached table for exactly this event value (validated by physical
    equality, so an event the space never compiled — or a same-id
    impostor — returns [None]). Ignores the backend toggle. *)

val prob : t -> Event.t -> fixed:Assignment.t -> Rat.t
(** Exact [Pr[e | fixed]]. *)

val prob_vector : t -> Event.t -> fixed:Assignment.t -> var:int -> Rat.t array * Rat.t
(** [(after, before)]: [after.(y) = Pr[e | fixed, var=y]] for every value
    [y] of [var], and [before = Pr[e | fixed]], computed in a single
    pass. [var] must be unfixed. *)

val inc : t -> Event.t -> fixed:Assignment.t -> var:int -> value:int -> Rat.t
(** The paper's [Inc(e, value)]:
    [Pr[e | fixed, var=value] / Pr[e | fixed]], or [0] when
    [Pr[e | fixed] = 0]. *)

val event_holds : t -> Event.t -> Assignment.t -> bool
(** Does the event occur on the assignment (all scope variables fixed)?
    O(1) via the compiled bitmap when a table is live; otherwise falls
    back to {!Event.holds}. *)

val fold_scope_assignments :
  t -> Event.t -> Assignment.t -> ('a -> Rat.t -> (int -> int) -> 'a) -> 'a -> 'a
(** Fold over the joint values of the unfixed scope variables of an event;
    the callback receives the joint probability and a scope lookup. *)

(** Incremental conditional probabilities across a sequence of variable
    fixings. Each event keeps its live (consistent-so-far) table rows;
    fixing a variable filters only the tables of the events depending on
    it — O(live rows of affected events) per step instead of a fresh
    enumeration. Values are exactly those of {!prob} / {!prob_vector} on
    the tracker's partial assignment. *)
module Cond_tracker : sig
  type tracker

  val create : t -> Event.t array -> tracker
  (** Start from the empty assignment. Event ids must equal their array
      index. Honours the backend toggle at creation time: under [Enum]
      (or for events without a compiled table) conditionals are
      recomputed by enumeration on each affected fixing. *)

  val space : tracker -> t

  val assignment : tracker -> Assignment.t
  (** The partial assignment built so far. Callers must mutate it only
      through {!fix}. *)

  val prob : tracker -> int -> Rat.t
  (** Current [Pr[event | assignment]], by event id. O(1). *)

  val prob_vector : tracker -> int -> var:int -> Rat.t array * Rat.t
  (** [(after, before)] as in {!Space.prob_vector}, for an unfixed
      [var], from the live rows in one pass. *)

  val fix : tracker -> var:int -> value:int -> unit
  (** Fix [var := value] and refresh the conditionals of every event
      depending on [var]. [var] must be unfixed. *)
end

val sample_unfixed : t -> Random.State.t -> Assignment.t -> Assignment.t
(** Randomly complete a partial assignment (used by Moser–Tardos). *)

val resample : t -> Random.State.t -> Assignment.t -> int list -> Assignment.t
(** Resample exactly the listed variables. *)
