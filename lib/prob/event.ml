(* Bad events.

   An event has a scope (the ids of the variables it depends on) and a
   predicate evaluated on values of exactly those variables; the predicate
   receives a lookup function defined on the scope. The event "occurs" on
   an assignment iff the predicate is true.

   The closure is the AUTHORING interface. For computation, an event can
   be COMPILED against the distributions of its scope variables into a
   weighted satisfying-assignment table: one row per scope tuple on which
   the predicate holds, carrying the exact joint probability of that
   tuple. The table makes the event plain data — conditional
   probabilities become filtered row sums (see [Space]), and the
   satisfying set serializes without the closure. Tables are cached by
   the owning [Space] (not here), so one event used against two different
   spaces can never pick up the wrong weights. *)

module Rat = Lll_num.Rat

type t = {
  id : int;
  name : string;
  scope : int array; (* sorted distinct variable ids *)
  pred : (int -> int) -> bool;
}

(* A compiled event: the satisfying scope tuples, mixed-radix encoded.
   [codes] lists the satisfying row codes in increasing order;
   [weights.(j)] is the exact joint probability of row [codes.(j)] under
   the distributions the table was compiled against. [sat] is a dense
   membership bitmap over all [total] codes for O(1) "does this complete
   tuple satisfy the event" checks. *)
type table = {
  tscope : int array; (* = the event's scope *)
  arities : int array; (* arity of each scope variable, by position *)
  strides : int array; (* code = sum_i value_i * strides.(i) *)
  total : int; (* product of arities *)
  codes : int array;
  weights : Rat.t array;
  sat : Bytes.t;
}

let make ~id ~name ~scope pred =
  let scope = List.sort_uniq compare (Array.to_list scope) in
  { id; name; scope = Array.of_list scope; pred }

let id e = e.id
let name e = e.name
let scope e = e.scope
let depends_on e var_id = Array.exists (fun v -> v = var_id) e.scope

(* Apply the predicate to an explicit lookup function (used by the exact
   enumeration in [Space]). *)
let pred_holds e lookup = e.pred lookup

(* Evaluate on a complete-enough assignment (all scope variables fixed). *)
let holds e (a : Assignment.t) =
  e.pred (fun var_id ->
      if not (depends_on e var_id) then
        invalid_arg (Printf.sprintf "Event.holds: %s looked up out-of-scope variable %d" e.name var_id);
      Assignment.value_exn a var_id)

(* ---- compiled tables ---- *)

let default_max_rows = 1 lsl 20

let value_at tab ~pos ~code = code / tab.strides.(pos) mod tab.arities.(pos)

let table_mem tab code =
  Char.code (Bytes.get tab.sat (code lsr 3)) land (1 lsl (code land 7)) <> 0

(* Position of a variable id in the (sorted) compiled scope, by binary
   search; -1 when absent. *)
let scope_pos tab var_id =
  let lo = ref 0 and hi = ref (Array.length tab.tscope) in
  let res = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = tab.tscope.(mid) in
    if v = var_id then begin
      res := mid;
      lo := !hi
    end
    else if v < var_id then lo := mid + 1
    else hi := mid
  done;
  !res

(* Mixed-radix code of a complete scope valuation. *)
let code_of tab lookup =
  let c = ref 0 in
  Array.iteri (fun i v -> c := !c + (lookup v * tab.strides.(i))) tab.tscope;
  !c

let compile ~arity_of ~prob_of ?(max_rows = default_max_rows) e =
  let k = Array.length e.scope in
  let arities = Array.map arity_of e.scope in
  let total =
    Array.fold_left (fun acc a -> if acc > max_rows then acc else acc * a) 1 arities
  in
  if total > max_rows then None
  else begin
    let strides = Array.make k 1 in
    for i = k - 2 downto 0 do
      strides.(i) <- strides.(i + 1) * arities.(i + 1)
    done;
    let tab =
      { tscope = e.scope; arities; strides; total; codes = [||]; weights = [||];
        sat = Bytes.make ((total + 7) / 8) '\000' }
    in
    (* enumerate every scope tuple; keep the satisfying ones with their
       exact joint probabilities *)
    let vals = Array.make k 0 in
    let lookup vid =
      let pos = scope_pos tab vid in
      if pos < 0 then
        invalid_arg (Printf.sprintf "Event.compile: %s looked up out-of-scope variable %d" e.name vid);
      vals.(pos)
    in
    let codes = ref [] and weights = ref [] and nrows = ref 0 in
    for code = total - 1 downto 0 do
      for i = 0 to k - 1 do
        vals.(i) <- code / strides.(i) mod arities.(i)
      done;
      if e.pred lookup then begin
        let w = ref Rat.one in
        for i = 0 to k - 1 do
          w := Rat.mul !w (prob_of e.scope.(i) vals.(i))
        done;
        codes := code :: !codes;
        weights := !w :: !weights;
        incr nrows;
        Bytes.set tab.sat (code lsr 3)
          (Char.chr (Char.code (Bytes.get tab.sat (code lsr 3)) lor (1 lsl (code land 7))))
      end
    done;
    Some { tab with codes = Array.of_list !codes; weights = Array.of_list !weights }
  end

(* Rebuild an event and its compiled table from stored parts (the v3
   binary instance loader). Only [codes]/[weights]/[arities] travel;
   strides, total and the sat bitmap are re-derived here, and the event's
   predicate is the bitmap itself — the same replacement [of_bad_set]
   performs for the text loader, so both backends see one semantics. *)
let of_table ~id ~name ~scope ~arities ~codes ~weights =
  let fail msg = invalid_arg ("Event.of_table: " ^ msg) in
  let k = Array.length scope in
  if Array.length arities <> k then fail "scope/arities length mismatch";
  for i = 1 to k - 1 do
    if scope.(i - 1) >= scope.(i) then fail "scope must be strictly increasing"
  done;
  Array.iter (fun v -> if v < 0 then fail "negative variable id") scope;
  Array.iter (fun a -> if a <= 0 then fail "arities must be positive") arities;
  let total =
    Array.fold_left
      (fun acc a ->
        if acc > max_int / a then fail "arity product overflow";
        acc * a)
      1 arities
  in
  let strides = Array.make k 1 in
  for i = k - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * arities.(i + 1)
  done;
  let nrows = Array.length codes in
  if Array.length weights <> nrows then fail "codes/weights length mismatch";
  let sat = Bytes.make ((total + 7) / 8) '\000' in
  for j = 0 to nrows - 1 do
    let code = codes.(j) in
    if code < 0 || code >= total then fail "row code out of range";
    if j > 0 && codes.(j - 1) >= code then fail "row codes must be strictly increasing";
    if Rat.sign weights.(j) <= 0 then fail "row weight must be positive";
    Bytes.set sat (code lsr 3)
      (Char.chr (Char.code (Bytes.get sat (code lsr 3)) lor (1 lsl (code land 7))))
  done;
  let tab = { tscope = scope; arities; strides; total; codes; weights; sat } in
  let ev =
    { id; name; scope; pred = (fun lookup -> table_mem tab (code_of tab lookup)) }
  in
  (ev, tab)

(* Common constructions *)

let never ~id ~name = { id; name; scope = [||]; pred = (fun _ -> false) }

let all_equal ~id ~name ~scope =
  make ~id ~name ~scope (fun lookup ->
      match Array.to_list scope with
      | [] -> true
      | v0 :: rest ->
        let x = lookup v0 in
        List.for_all (fun v -> lookup v = x) rest)

let all_value ~id ~name ~scope ~value =
  make ~id ~name ~scope (fun lookup -> Array.for_all (fun v -> lookup v = value) scope)

let of_bad_set ~id ~name ~scope bad =
  (* [bad] lists the value tuples (in scope order) on which the event
     occurs *)
  let table = Hashtbl.create (List.length bad) in
  List.iter (fun tuple -> Hashtbl.replace table tuple ()) bad;
  make ~id ~name ~scope (fun lookup -> Hashtbl.mem table (Array.to_list (Array.map lookup scope)))

(* Boolean combinators. The scope is the union of the operand scopes;
   operand predicates only ever probe their own scopes, which are subsets
   of the union. *)

let conj ~id ~name e1 e2 =
  make ~id ~name ~scope:(Array.append e1.scope e2.scope) (fun lookup ->
      e1.pred lookup && e2.pred lookup)

let disj ~id ~name e1 e2 =
  make ~id ~name ~scope:(Array.append e1.scope e2.scope) (fun lookup ->
      e1.pred lookup || e2.pred lookup)

let negate ~id ~name e = make ~id ~name ~scope:e.scope (fun lookup -> not (e.pred lookup))

let pp fmt e = Format.fprintf fmt "%s(id=%d, |scope|=%d)" e.name e.id (Array.length e.scope)
