(* Bad events.

   An event has a scope (the ids of the variables it depends on) and a
   predicate evaluated on values of exactly those variables; the predicate
   receives a lookup function defined on the scope. The event "occurs" on
   an assignment iff the predicate is true. *)

type t = {
  id : int;
  name : string;
  scope : int array; (* sorted distinct variable ids *)
  pred : (int -> int) -> bool;
}

let make ~id ~name ~scope pred =
  let scope = List.sort_uniq compare (Array.to_list scope) in
  { id; name; scope = Array.of_list scope; pred }

let id e = e.id
let name e = e.name
let scope e = e.scope
let depends_on e var_id = Array.exists (fun v -> v = var_id) e.scope

(* Apply the predicate to an explicit lookup function (used by the exact
   enumeration in [Space]). *)
let pred_holds e lookup = e.pred lookup

(* Evaluate on a complete-enough assignment (all scope variables fixed). *)
let holds e (a : Assignment.t) =
  e.pred (fun var_id ->
      if not (depends_on e var_id) then
        invalid_arg (Printf.sprintf "Event.holds: %s looked up out-of-scope variable %d" e.name var_id);
      Assignment.value_exn a var_id)

(* Common constructions *)

let never ~id ~name = { id; name; scope = [||]; pred = (fun _ -> false) }

let all_equal ~id ~name ~scope =
  make ~id ~name ~scope (fun lookup ->
      match Array.to_list scope with
      | [] -> true
      | v0 :: rest ->
        let x = lookup v0 in
        List.for_all (fun v -> lookup v = x) rest)

let all_value ~id ~name ~scope ~value =
  make ~id ~name ~scope (fun lookup -> Array.for_all (fun v -> lookup v = value) scope)

let of_bad_set ~id ~name ~scope bad =
  (* [bad] lists the value tuples (in scope order) on which the event
     occurs *)
  let table = Hashtbl.create (List.length bad) in
  List.iter (fun tuple -> Hashtbl.replace table tuple ()) bad;
  make ~id ~name ~scope (fun lookup -> Hashtbl.mem table (Array.to_list (Array.map lookup scope)))

(* Boolean combinators. The scope is the union of the operand scopes;
   operand predicates only ever probe their own scopes, which are subsets
   of the union. *)

let conj ~id ~name e1 e2 =
  make ~id ~name ~scope:(Array.append e1.scope e2.scope) (fun lookup ->
      e1.pred lookup && e2.pred lookup)

let disj ~id ~name e1 e2 =
  make ~id ~name ~scope:(Array.append e1.scope e2.scope) (fun lookup ->
      e1.pred lookup || e2.pred lookup)

let negate ~id ~name e = make ~id ~name ~scope:e.scope (fun lookup -> not (e.pred lookup))

let pp fmt e = Format.fprintf fmt "%s(id=%d, |scope|=%d)" e.name e.id (Array.length e.scope)
