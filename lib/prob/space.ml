(* Product probability spaces and exact conditional probabilities.

   A space is a family of independent discrete variables (ids must equal
   their index). Probabilities of events conditioned on a partial
   assignment are computed exactly, by enumerating the joint values of the
   event's *unfixed* scope variables — the scopes of LLL events are small
   (bounded by a function of [d] and [r]), so this is cheap and exact. *)

module Rat = Lll_num.Rat

type t = { vars : Var.t array }

let create vars =
  Array.iteri
    (fun i v ->
      if Var.id v <> i then invalid_arg "Space.create: variable id must equal its index")
    vars;
  { vars }

let num_vars t = Array.length t.vars
let var t id = t.vars.(id)
let vars t = t.vars

(* Enumerate the assignments of the unfixed scope variables of [e],
   folding [f acc weight lookup] over each joint value, where [weight] is
   the joint probability and [lookup] resolves every scope variable. *)
let fold_scope_assignments t e (fixed : Assignment.t) f acc =
  let scope = Event.scope e in
  let unfixed = Array.of_list (List.filter (fun id -> not (Assignment.is_fixed fixed id)) (Array.to_list scope)) in
  let current = Hashtbl.create (Array.length scope) in
  Array.iter
    (fun id -> match Assignment.get fixed id with Some v -> Hashtbl.replace current id v | None -> ())
    scope;
  let lookup id =
    match Hashtbl.find_opt current id with
    | Some v -> v
    | None -> invalid_arg "Space.fold_scope_assignments: lookup outside scope"
  in
  let rec go i weight acc =
    if i = Array.length unfixed then f acc weight lookup
    else begin
      let id = unfixed.(i) in
      let v = t.vars.(id) in
      let acc = ref acc in
      for value = 0 to Var.arity v - 1 do
        Hashtbl.replace current id value;
        acc := go (i + 1) (Rat.mul weight (Var.prob v value)) !acc
      done;
      Hashtbl.remove current id;
      !acc
    end
  in
  go 0 Rat.one acc

(* Exact Pr[e | fixed]: sum of joint probabilities of unfixed-scope values
   on which the predicate holds. The fixed variables outside the scope are
   irrelevant; fixed scope variables are substituted. *)
let prob t e ~(fixed : Assignment.t) =
  fold_scope_assignments t e fixed
    (fun acc weight lookup -> if Event.pred_holds e lookup then Rat.add acc weight else acc)
    Rat.zero

(* All conditional probabilities of [e] after additionally fixing [var],
   in ONE enumeration of the unfixed scope: bucket each joint tuple's
   weight by its value of [var], then divide bucket [y] by [Pr[var = y]].
   Returns [(per-value conditionals, Pr[e | fixed])]. The fixers use this
   to evaluate all candidate values of a variable at the cost of a single
   scope enumeration. *)
let prob_vector t e ~(fixed : Assignment.t) ~var =
  if Assignment.is_fixed fixed var then invalid_arg "Space.prob_vector: var already fixed";
  let v = t.vars.(var) in
  let k = Var.arity v in
  if not (Event.depends_on e var) then begin
    let p = prob t e ~fixed in
    (Array.make k p, p)
  end
  else begin
    let buckets = Array.make k Rat.zero in
    let () =
      fold_scope_assignments t e fixed
        (fun () weight lookup ->
          if Event.pred_holds e lookup then begin
            let y = lookup var in
            buckets.(y) <- Rat.add buckets.(y) weight
          end)
        ()
    in
    let before = Array.fold_left Rat.add Rat.zero buckets in
    (Array.mapi (fun y w -> Rat.div w (Var.prob v y)) buckets, before)
  end

(* The paper's Inc(t, y): ratio of the conditional probability of [e] after
   additionally fixing [var := value] to the one before. By the paper's
   convention, [Inc = 0] when the denominator is zero. *)
let inc t e ~(fixed : Assignment.t) ~var ~value =
  let before = prob t e ~fixed in
  if Rat.is_zero before then Rat.zero
  else begin
    let after = prob t e ~fixed:(Assignment.set fixed var value) in
    Rat.div after before
  end

(* Sample values for all unfixed variables (floats suffice here — sampling
   is only used by randomized baselines, never by correctness checks). *)
let sample_unfixed t rng (fixed : Assignment.t) =
  let a = Assignment.copy fixed in
  Array.iteri
    (fun id v ->
      if not (Assignment.is_fixed a id) then begin
        let r = Random.State.float rng 1.0 in
        let k = Var.arity v in
        let rec pick i acc =
          if i = k - 1 then i
          else begin
            let acc = acc +. Rat.to_float (Var.prob v i) in
            if r < acc then i else pick (i + 1) acc
          end
        in
        Assignment.set_inplace a id (pick 0 0.0)
      end)
    t.vars;
  a

let resample t rng (a : Assignment.t) ids =
  let a = Assignment.copy a in
  List.iter
    (fun id ->
      let v = t.vars.(id) in
      let r = Random.State.float rng 1.0 in
      let k = Var.arity v in
      let rec pick i acc =
        if i = k - 1 then i
        else begin
          let acc = acc +. Rat.to_float (Var.prob v i) in
          if r < acc then i else pick (i + 1) acc
        end
      in
      Assignment.set_inplace a id (pick 0 0.0))
    ids;
  a
