(* Product probability spaces and exact conditional probabilities.

   A space is a family of independent discrete variables (ids must equal
   their index). Probabilities of events conditioned on a partial
   assignment are computed exactly, in one of two ways:

   - [Enum]: enumerate the joint values of the event's *unfixed* scope
     variables through the closure predicate (the original path, kept as
     a fallback and as the reference for differential tests);
   - [Table]: sum rows of the event's compiled weighted table
     ({!Event.compile}) that are consistent with the fixed scope
     variables, and divide once by the probability of the fixed part.

   Both paths produce the same rational, exactly: the table rows carry
   full-scope joint probabilities [w = Π_scope p_i(x_i)], so the sum of
   consistent rows equals [Π_fixed p_i(x_i) · Σ_unfixed-tuples w'] and
   dividing by [norm = Π_fixed p_i(x_i)] (never zero — [Var.make]
   requires strictly positive probabilities) recovers the enumerated sum
   term for term in ℚ. [Rat] normalizes, so the equality is structural.

   Tables are cached here, keyed by event id and validated by physical
   equality against the compiled event, so a stale cache (same id,
   different event or different space) silently falls back to
   enumeration rather than returning wrong weights.

   {!Cond_tracker} maintains conditional probabilities *incrementally*
   across a sequence of variable fixings: each event keeps its live
   (consistent-so-far) table rows, and fixing a variable only filters
   the tables of the events depending on it — O(live rows) per affected
   event instead of a fresh enumeration of the unfixed scope. *)

module Rat = Lll_num.Rat

type backend = Enum | Table

let backend_ref = ref Table
let set_backend b = backend_ref := b
let backend () = !backend_ref

let with_backend b f =
  let old = !backend_ref in
  backend_ref := b;
  Fun.protect ~finally:(fun () -> backend_ref := old) f

type t = {
  vars : Var.t array;
  mutable tables : (Event.t * Event.table) option array; (* keyed by event id *)
}

let create vars =
  Array.iteri
    (fun i v ->
      if Var.id v <> i then invalid_arg "Space.create: variable id must equal its index")
    vars;
  { vars; tables = [||] }

let num_vars t = Array.length t.vars
let var t id = t.vars.(id)
let vars t = t.vars

(* ---- compiled-table cache ---- *)

let ensure_table_capacity t id =
  let n = Array.length t.tables in
  if id >= n then begin
    let grown = Array.make (max (id + 1) ((2 * n) + 1)) None in
    Array.blit t.tables 0 grown 0 n;
    t.tables <- grown
  end

let compile_event t e =
  let id = Event.id e in
  if id < 0 then invalid_arg "Space.compile_event: negative event id";
  ensure_table_capacity t id;
  match
    Event.compile
      ~arity_of:(fun vid -> Var.arity t.vars.(vid))
      ~prob_of:(fun vid v -> Var.prob t.vars.(vid) v)
      e
  with
  | Some tab -> t.tables.(id) <- Some (e, tab)
  | None -> () (* scope too large to tabulate; enumeration handles it *)

let compile_events t events = Array.iter (compile_event t) events

(* Install a pre-built table (the binary instance loader) instead of
   recompiling. The caller vouches that [tab] was built against this
   space's distributions — [Event.of_table] re-validates structure, and
   the binary container's checksum covers transport. *)
let install_table t e tab =
  let id = Event.id e in
  if id < 0 then invalid_arg "Space.install_table: negative event id";
  if not (Event.scope e == tab.Event.tscope) then
    invalid_arg "Space.install_table: table does not belong to the event";
  ensure_table_capacity t id;
  t.tables.(id) <- Some (e, tab)

(* The cached table for exactly this event value, regardless of the
   backend toggle (serialization wants the table even under [Enum]). *)
let compiled_table t e =
  let id = Event.id e in
  if id >= 0 && id < Array.length t.tables then
    match t.tables.(id) with
    | Some (e', tab) when e' == e -> Some tab
    | _ -> None
  else None

let find_table t e = match !backend_ref with Enum -> None | Table -> compiled_table t e

(* ---- exact enumeration (fallback + differential reference) ---- *)

(* Enumerate the assignments of the unfixed scope variables of [e],
   folding [f acc weight lookup] over each joint value, where [weight] is
   the joint probability and [lookup] resolves every scope variable. The
   scratch state is a value array indexed by scope POSITION (the scope is
   sorted, so lookups are a binary search) — no per-call Hashtbl. *)
let fold_scope_assignments t e (fixed : Assignment.t) f acc =
  let scope = Event.scope e in
  let k = Array.length scope in
  let vals = Array.make (max k 1) 0 in
  let unfixed = Array.make (max k 1) 0 in
  let nu = ref 0 in
  Array.iteri
    (fun pos id ->
      match Assignment.get fixed id with
      | Some v -> vals.(pos) <- v
      | None ->
        unfixed.(!nu) <- pos;
        incr nu)
    scope;
  let pos_of id =
    let lo = ref 0 and hi = ref k and res = ref (-1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if scope.(mid) = id then begin
        res := mid;
        lo := !hi
      end
      else if scope.(mid) < id then lo := mid + 1
      else hi := mid
    done;
    !res
  in
  let lookup id =
    let pos = pos_of id in
    if pos < 0 then invalid_arg "Space.fold_scope_assignments: lookup outside scope";
    vals.(pos)
  in
  let n = !nu in
  let rec go i weight acc =
    if i = n then f acc weight lookup
    else begin
      let pos = unfixed.(i) in
      let v = t.vars.(scope.(pos)) in
      let acc = ref acc in
      for value = 0 to Var.arity v - 1 do
        vals.(pos) <- value;
        acc := go (i + 1) (Rat.mul weight (Var.prob v value)) !acc
      done;
      !acc
    end
  in
  go 0 Rat.one acc

let enum_prob t e ~(fixed : Assignment.t) =
  fold_scope_assignments t e fixed
    (fun acc weight lookup -> if Event.pred_holds e lookup then Rat.add acc weight else acc)
    Rat.zero

(* ---- table-backed conditionals ---- *)

(* Fixed scope positions and the probability of the fixed part. Returns
   [(fixed_positions, fixed_values, count, norm)]. *)
let table_fixed_part t (tab : Event.table) (fixed : Assignment.t) =
  let k = Array.length tab.Event.tscope in
  let fpos = Array.make (max k 1) 0 in
  let fval = Array.make (max k 1) 0 in
  let nf = ref 0 in
  let norm = ref Rat.one in
  Array.iteri
    (fun pos vid ->
      match Assignment.get fixed vid with
      | Some v ->
        fpos.(!nf) <- pos;
        fval.(!nf) <- v;
        incr nf;
        norm := Rat.mul !norm (Var.prob t.vars.(vid) v)
      | None -> ())
    tab.Event.tscope;
  (fpos, fval, !nf, !norm)

let row_consistent (tab : Event.table) fpos fval nf code =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < nf do
    if Event.value_at tab ~pos:fpos.(!i) ~code <> fval.(!i) then ok := false;
    incr i
  done;
  !ok

let table_prob t tab (fixed : Assignment.t) =
  let fpos, fval, nf, norm = table_fixed_part t tab fixed in
  let sum = ref Rat.zero in
  let codes = tab.Event.codes and weights = tab.Event.weights in
  for j = 0 to Array.length codes - 1 do
    if row_consistent tab fpos fval nf codes.(j) then sum := Rat.add !sum weights.(j)
  done;
  Rat.div !sum norm

(* Exact Pr[e | fixed]. The fixed variables outside the scope are
   irrelevant; fixed scope variables are substituted. *)
let prob t e ~(fixed : Assignment.t) =
  match find_table t e with
  | Some tab -> table_prob t tab fixed
  | None -> enum_prob t e ~fixed

(* All conditional probabilities of [e] after additionally fixing [var],
   in ONE pass: bucket each consistent tuple's weight by its value of
   [var], then divide bucket [y] by [Pr[var = y]] (and, on the table
   path, by the fixed part's probability). Returns
   [(per-value conditionals, Pr[e | fixed])]. The fixers use this to
   evaluate all candidate values of a variable at the cost of a single
   pass. *)
let prob_vector t e ~(fixed : Assignment.t) ~var =
  if Assignment.is_fixed fixed var then invalid_arg "Space.prob_vector: var already fixed";
  let v = t.vars.(var) in
  let k = Var.arity v in
  if not (Event.depends_on e var) then begin
    let p = prob t e ~fixed in
    (Array.make k p, p)
  end
  else begin
    match find_table t e with
    | Some tab ->
      let fpos, fval, nf, norm = table_fixed_part t tab fixed in
      let vpos = Event.scope_pos tab var in
      let buckets = Array.make k Rat.zero in
      let codes = tab.Event.codes and weights = tab.Event.weights in
      for j = 0 to Array.length codes - 1 do
        let code = codes.(j) in
        if row_consistent tab fpos fval nf code then begin
          let y = Event.value_at tab ~pos:vpos ~code in
          buckets.(y) <- Rat.add buckets.(y) weights.(j)
        end
      done;
      let before = Rat.div (Array.fold_left Rat.add Rat.zero buckets) norm in
      (Array.mapi (fun y w -> Rat.div w (Rat.mul norm (Var.prob v y))) buckets, before)
    | None ->
      let buckets = Array.make k Rat.zero in
      let () =
        fold_scope_assignments t e fixed
          (fun () weight lookup ->
            if Event.pred_holds e lookup then begin
              let y = lookup var in
              buckets.(y) <- Rat.add buckets.(y) weight
            end)
          ()
      in
      let before = Array.fold_left Rat.add Rat.zero buckets in
      (Array.mapi (fun y w -> Rat.div w (Var.prob v y)) buckets, before)
  end

(* The paper's Inc(t, y): ratio of the conditional probability of [e] after
   additionally fixing [var := value] to the one before. By the paper's
   convention, [Inc = 0] when the denominator is zero. *)
let inc t e ~(fixed : Assignment.t) ~var ~value =
  let before = prob t e ~fixed in
  if Rat.is_zero before then Rat.zero
  else begin
    let after = prob t e ~fixed:(Assignment.set fixed var value) in
    Rat.div after before
  end

(* Does the event occur on a complete-enough assignment? O(1) via the
   compiled bitmap when a table is live. *)
let event_holds t e (a : Assignment.t) =
  match find_table t e with
  | Some tab -> Event.table_mem tab (Event.code_of tab (fun vid -> Assignment.value_exn a vid))
  | None -> Event.holds e a

(* ---- incremental conditional probabilities ---- *)

module Cond_tracker = struct
  (* Per event: the live table rows (consistent with every fixing so
     far), their running weight sum divided by the probability of the
     fixed scope part, i.e. the current conditional probability.
     Fixing a variable filters only the live rows of the events that
     depend on it. Events whose table did not compile (scope too large)
     are recomputed by enumeration on each affected fixing — same
     values, just slower. *)
  type entry = {
    ev : Event.t;
    tab : Event.table option;
    mutable live_codes : int array;
    mutable live_weights : Rat.t array;
    mutable nlive : int;
    mutable norm : Rat.t; (* Π_{fixed scope vars} P[var = value] *)
    mutable cur : Rat.t; (* current Pr[ev | fixed] *)
  }

  type tracker = {
    tspace : t;
    fixed : Assignment.t;
    entries : entry array; (* indexed by event id *)
    var_entries : int array array; (* variable id -> event ids depending on it *)
  }

  let create space events =
    Array.iteri
      (fun i e ->
        if Event.id e <> i then
          invalid_arg "Cond_tracker.create: event id must equal its index")
      events;
    let fixed = Assignment.empty (num_vars space) in
    let entries =
      Array.map
        (fun e ->
          (* honour the backend toggle at creation time: under [Enum] the
             tracker degrades to per-fixing enumeration throughout *)
          match find_table space e with
          | Some tab ->
            {
              ev = e;
              tab = Some tab;
              live_codes = Array.copy tab.Event.codes;
              live_weights = Array.copy tab.Event.weights;
              nlive = Array.length tab.Event.codes;
              norm = Rat.one;
              cur = Array.fold_left Rat.add Rat.zero tab.Event.weights;
            }
          | None ->
            {
              ev = e;
              tab = None;
              live_codes = [||];
              live_weights = [||];
              nlive = 0;
              norm = Rat.one;
              cur = enum_prob space e ~fixed;
            })
        events
    in
    let nv = num_vars space in
    let var_events_l = Array.make nv [] in
    for i = Array.length events - 1 downto 0 do
      Array.iter
        (fun vid -> var_events_l.(vid) <- i :: var_events_l.(vid))
        (Event.scope events.(i))
    done;
    { tspace = space; fixed; entries; var_entries = Array.map Array.of_list var_events_l }

  let space tr = tr.tspace
  let assignment tr = tr.fixed
  let prob tr ev = tr.entries.(ev).cur

  (* Conditional probabilities of [ev] for every candidate value of the
     unfixed variable [var], from the live rows in one pass — the
     incremental counterpart of {!Space.prob_vector}. *)
  let prob_vector tr ev ~var =
    if Assignment.is_fixed tr.fixed var then
      invalid_arg "Cond_tracker.prob_vector: var already fixed";
    let en = tr.entries.(ev) in
    let v = tr.tspace.vars.(var) in
    let k = Var.arity v in
    if not (Event.depends_on en.ev var) then (Array.make k en.cur, en.cur)
    else begin
      match en.tab with
      | Some tab ->
        let vpos = Event.scope_pos tab var in
        let buckets = Array.make k Rat.zero in
        for j = 0 to en.nlive - 1 do
          let y = Event.value_at tab ~pos:vpos ~code:en.live_codes.(j) in
          buckets.(y) <- Rat.add buckets.(y) en.live_weights.(j)
        done;
        (Array.mapi (fun y w -> Rat.div w (Rat.mul en.norm (Var.prob v y))) buckets, en.cur)
      | None -> prob_vector tr.tspace en.ev ~fixed:tr.fixed ~var
    end

  (* Fix [var := value]: update the partial assignment and refresh the
     conditional probability of every event depending on [var] by
     filtering its live rows — O(live rows of affected events). *)
  let fix tr ~var ~value =
    if Assignment.is_fixed tr.fixed var then invalid_arg "Cond_tracker.fix: var already fixed";
    Assignment.set_inplace tr.fixed var value;
    let pv = Var.prob tr.tspace.vars.(var) value in
    Array.iter
      (fun ev ->
        let en = tr.entries.(ev) in
        match en.tab with
        | Some tab ->
          let vpos = Event.scope_pos tab var in
          let kept = ref 0 in
          let sum = ref Rat.zero in
          for j = 0 to en.nlive - 1 do
            let code = en.live_codes.(j) in
            if Event.value_at tab ~pos:vpos ~code = value then begin
              en.live_codes.(!kept) <- code;
              en.live_weights.(!kept) <- en.live_weights.(j);
              sum := Rat.add !sum en.live_weights.(j);
              incr kept
            end
          done;
          en.nlive <- !kept;
          en.norm <- Rat.mul en.norm pv;
          en.cur <- Rat.div !sum en.norm
        | None -> en.cur <- enum_prob tr.tspace en.ev ~fixed:tr.fixed)
      tr.var_entries.(var)
end

(* Sample values for all unfixed variables (floats suffice here — sampling
   is only used by randomized baselines, never by correctness checks). *)
let sample_unfixed t rng (fixed : Assignment.t) =
  let a = Assignment.copy fixed in
  Array.iteri
    (fun id v ->
      if not (Assignment.is_fixed a id) then begin
        let r = Random.State.float rng 1.0 in
        let k = Var.arity v in
        let rec pick i acc =
          if i = k - 1 then i
          else begin
            let acc = acc +. Rat.to_float (Var.prob v i) in
            if r < acc then i else pick (i + 1) acc
          end
        in
        Assignment.set_inplace a id (pick 0 0.0)
      end)
    t.vars;
  a

let resample t rng (a : Assignment.t) ids =
  let a = Assignment.copy a in
  List.iter
    (fun id ->
      let v = t.vars.(id) in
      let r = Random.State.float rng 1.0 in
      let k = Var.arity v in
      let rec pick i acc =
        if i = k - 1 then i
        else begin
          let acc = acc +. Rat.to_float (Var.prob v i) in
          if r < acc then i else pick (i + 1) acc
        end
      in
      Assignment.set_inplace a id (pick 0 0.0))
    ids;
  a
