(* Finite discrete random variables with exact rational distributions.

   Values are encoded as indices [0 .. arity-1]; [probs.(i)] is the
   probability of value [i]. Probabilities are strictly positive (values
   with probability zero must simply be omitted — the paper's argument
   iterates over values "occurring with positive probabilities") and sum
   to exactly 1. *)

module Rat = Lll_num.Rat

type t = { id : int; name : string; probs : Rat.t array }

let make ~id ~name probs =
  if Array.length probs = 0 then invalid_arg "Var.make: empty distribution";
  Array.iter (fun p -> if Rat.sign p <= 0 then invalid_arg "Var.make: probabilities must be positive") probs;
  let total = Array.fold_left Rat.add Rat.zero probs in
  if not (Rat.equal total Rat.one) then invalid_arg "Var.make: probabilities must sum to 1";
  { id; name; probs = Array.copy probs }

let uniform ~id ~name k =
  if k < 1 then invalid_arg "Var.uniform: arity >= 1";
  make ~id ~name (Array.make k (Rat.of_ints 1 k))

let bernoulli ~id ~name p =
  if Rat.sign p <= 0 || Rat.geq p Rat.one then invalid_arg "Var.bernoulli: need 0 < p < 1";
  (* value 0 = false, value 1 = true *)
  make ~id ~name [| Rat.sub Rat.one p; p |]

let id v = v.id
let name v = v.name
let arity v = Array.length v.probs
let prob v i = v.probs.(i)
let probs v = Array.copy v.probs

let pp fmt v =
  Format.fprintf fmt "%s(id=%d, arity=%d)" v.name v.id (arity v)
