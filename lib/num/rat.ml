(* Exact rational numbers over [Bigint].

   Invariant: [den] is strictly positive and [gcd (abs num) den = 1];
   zero is represented as [0/1]. *)

type t = { num : Bigint.t; den : Bigint.t }

let make_raw num den = { num; den }

let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* Normalise a machine-int fraction with native Euclid; [d > 0] and
   neither operand is [min_int]. *)
let make_ints n d =
  if n = 0 then { num = Bigint.zero; den = Bigint.one }
  else begin
    let g = igcd (Stdlib.abs n) d in
    make_raw (Bigint.of_int (n / g)) (Bigint.of_int (d / g))
  end

let make num den =
  if Bigint.is_zero den then invalid_arg "Rat.make: zero denominator";
  if Bigint.is_zero num then make_raw Bigint.zero Bigint.one
  else
    match (Bigint.to_int_opt num, Bigint.to_int_opt den) with
    | Some n, Some d when n <> min_int && d <> min_int ->
      (* limb-wise gcd dominates bulk construction; native Euclid is an
         order of magnitude cheaper when both sides fit a machine int *)
      let n, d = if d < 0 then (-n, -d) else (n, d) in
      make_ints n d
    | _ ->
      let num, den =
        if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den)
      in
      let g = Bigint.gcd num den in
      if Bigint.equal g Bigint.one then make_raw num den
      else make_raw (Bigint.div num g) (Bigint.div den g)

let zero = make_raw Bigint.zero Bigint.one
let one = make_raw Bigint.one Bigint.one
let two = make_raw Bigint.two Bigint.one
let minus_one = make_raw Bigint.minus_one Bigint.one

let of_bigint n = make_raw n Bigint.one
let of_int i = of_bigint (Bigint.of_int i)

let of_ints n d =
  if d = 0 then invalid_arg "Rat.make: zero denominator"
  else if n = min_int || d = min_int then make (Bigint.of_int n) (Bigint.of_int d)
  else
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    make_ints n d

let num x = x.num
let den x = x.den
let is_zero x = Bigint.is_zero x.num
let sign x = Bigint.sign x.num

let neg x = { x with num = Bigint.neg x.num }
let abs x = { x with num = Bigint.abs x.num }

(* Machine-int fast path for the ring operations: when all four sides
   fit below 2^30 the cross-products stay below 2^60 and native
   arithmetic (and [make_ints]' native gcd) replaces four [Bigint]
   allocations. Table weights and tracker sums live in this range. *)
let small = 0x4000_0000

let as_small x =
  match (Bigint.to_int_opt x.num, Bigint.to_int_opt x.den) with
  | Some n, Some d when -small < n && n < small && d < small -> Some (n, d)
  | _ -> None

(* Same-denominator fast path: a/d + b/d = (a+b)/d, normalized by [make]
   — one gcd over much smaller operands than the cross-multiplied form.
   Probability sums in the tracker hot loops overwhelmingly add
   same-table weights (identical denominators), where this saves two
   multiplications and the large-operand gcd. *)
let add x y =
  match (as_small x, as_small y) with
  | Some (a, b), Some (c, d) ->
    if b = d then make_ints (a + c) b else make_ints ((a * d) + (c * b)) (b * d)
  | _ ->
    if Bigint.equal x.den y.den then make (Bigint.add x.num y.num) x.den
    else
      make
        (Bigint.add (Bigint.mul x.num y.den) (Bigint.mul y.num x.den))
        (Bigint.mul x.den y.den)

let sub x y =
  match (as_small x, as_small y) with
  | Some (a, b), Some (c, d) ->
    if b = d then make_ints (a - c) b else make_ints ((a * d) - (c * b)) (b * d)
  | _ ->
    if Bigint.equal x.den y.den then make (Bigint.sub x.num y.num) x.den
    else
      make
        (Bigint.sub (Bigint.mul x.num y.den) (Bigint.mul y.num x.den))
        (Bigint.mul x.den y.den)

let mul x y =
  match (as_small x, as_small y) with
  | Some (a, b), Some (c, d) -> make_ints (a * c) (b * d)
  | _ -> make (Bigint.mul x.num y.num) (Bigint.mul x.den y.den)

let inv x =
  if is_zero x then invalid_arg "Rat.inv: zero";
  make x.den x.num

let div x y =
  if is_zero y then invalid_arg "Rat.div: division by zero";
  make (Bigint.mul x.num y.den) (Bigint.mul x.den y.num)

let compare x y = Bigint.compare (Bigint.mul x.num y.den) (Bigint.mul y.num x.den)
let equal x y = Bigint.equal x.num y.num && Bigint.equal x.den y.den
let lt x y = compare x y < 0
let leq x y = compare x y <= 0
let gt x y = compare x y > 0
let geq x y = compare x y >= 0
let min x y = if leq x y then x else y
let max x y = if geq x y then x else y

let pow x n =
  if n >= 0 then make_raw (Bigint.pow x.num n) (Bigint.pow x.den n)
  else begin
    if is_zero x then invalid_arg "Rat.pow: zero to negative power";
    make (Bigint.pow x.den (-n)) (Bigint.pow x.num (-n))
  end

let sum = List.fold_left add zero
let product = List.fold_left mul one

let to_float x = Bigint.to_float x.num /. Bigint.to_float x.den

let to_string x =
  if Bigint.equal x.den Bigint.one then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    make (Bigint.of_string (String.sub s 0 i)) (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let pp fmt x = Format.pp_print_string fmt (to_string x)
let hash x = Hashtbl.hash (Bigint.hash x.num, Bigint.hash x.den)

(* 2^-e as a rational, e >= 0 *)
let pow2 e = if e >= 0 then of_bigint (Bigint.pow Bigint.two e) else make_raw Bigint.one (Bigint.pow Bigint.two (-e))
