(** Arbitrary-precision signed integers.

    A small, dependency-free bignum sufficient for exact probability
    bookkeeping in LLL instances (products of event probabilities have
    denominators far beyond 63 bits). Sign-magnitude representation with
    base-[10^9] limbs. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t
val of_string : string -> t
(** [of_string s] parses an optionally signed decimal integer.
    @raise Invalid_argument on malformed input. *)

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some i] iff [x] fits in a native [int]. *)

val to_int_exn : t -> int
val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_zero : t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod x y = (q, r)] with [x = q*y + r] and [r]
    having the sign of [x] (like OCaml's [/] and [mod]).
    @raise Invalid_argument if [y] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: the remainder is always non-negative. *)

val gcd : t -> t -> t
(** Greatest common divisor of the absolute values; [gcd 0 0 = 0]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

val num_digits : t -> int
(** Number of decimal digits of the magnitude (at least 1). *)
