(* Arbitrary-precision signed integers.

   Representation: sign-magnitude. The magnitude is a little-endian array of
   base-[base] limbs ([base] = 10^9), with no trailing zero limb; zero is the
   empty array with sign [0]. All limbs fit comfortably in OCaml's native
   63-bit integers, so limb products ([< 10^18]) never overflow. *)

type t = { sign : int; (* -1, 0 or 1 *) mag : int array (* little-endian, no trailing 0 *) }

let base = 1_000_000_000
let base_digits = 9

let zero = { sign = 0; mag = [||] }
let is_zero x = x.sign = 0
let sign x = x.sign

(* ---- normalisation helpers ---- *)

let trim mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = trim mag in
  if Array.length mag = 0 then zero else { sign; mag }

(* ---- construction ---- *)

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i < 0 then -1 else 1 in
    (* careful with [min_int]: negate limb-wise *)
    let rec limbs acc i =
      if i = 0 then List.rev acc
      else limbs (abs (i mod base) :: acc) (i / base)
    in
    { sign; mag = Array.of_list (limbs [] i) }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

(* ---- magnitude comparisons and arithmetic ---- *)

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = !carry + (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) in
    if s >= base then begin
      r.(i) <- s - base;
      carry := 1
    end
    else begin
      r.(i) <- s;
      carry := 0
    end
  done;
  trim r

(* requires |a| >= |b| *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - !borrow - (if i < lb then b.(i) else 0) in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  trim r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur mod base;
        carry := cur / base
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur mod base;
        carry := cur / base;
        incr k
      done
    done;
    trim r
  end

(* magnitude times a small non-negative int (< base) *)
let mag_mul_small a m =
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * m) + !carry in
      r.(i) <- cur mod base;
      carry := cur / base
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry mod base;
      carry := !carry / base;
      incr k
    done;
    trim r
  end

(* ---- signed arithmetic ---- *)

let neg x = if x.sign = 0 then zero else { x with sign = -x.sign }

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (mag_add x.mag y.mag)
  else begin
    let c = mag_compare x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then make x.sign (mag_sub x.mag y.mag)
    else make y.sign (mag_sub y.mag x.mag)
  end

let sub x y = add x (neg y)
let mul x y = if x.sign = 0 || y.sign = 0 then zero else make (x.sign * y.sign) (mag_mul x.mag y.mag)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then mag_compare x.mag y.mag
  else mag_compare y.mag x.mag

let equal x y = compare x y = 0
let lt x y = compare x y < 0
let leq x y = compare x y <= 0
let gt x y = compare x y > 0
let geq x y = compare x y >= 0
let abs x = if x.sign < 0 then neg x else x
let min x y = if leq x y then x else y
let max x y = if geq x y then x else y

(* ---- division ----

   Schoolbook long division processing limbs most-significant first; each
   quotient limb is found by binary search, which keeps the code simple and
   obviously correct at the cost of a [log base] factor. Our integers stay
   small (hundreds of digits), so this is plenty fast. *)

(* Fast path: divisor fits in one limb — classic long division with native
   arithmetic (the remainder [r * base + digit] stays below [base^2], well
   within 63-bit ints). *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r * base) + a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (trim q, if !r = 0 then [||] else [| !r |])

let mag_divmod a b =
  if Array.length b = 0 then invalid_arg "Bigint: division by zero";
  if mag_compare a b < 0 then ([||], a)
  else if Array.length b = 1 then mag_divmod_small a b.(0)
  else begin
    let la = Array.length a in
    let q = Array.make la 0 in
    let rem = ref [||] in
    for i = la - 1 downto 0 do
      (* rem := rem * base + a.(i) *)
      let shifted =
        let lr = Array.length !rem in
        let r = Array.make (lr + 1) 0 in
        Array.blit !rem 0 r 1 lr;
        r.(0) <- a.(i);
        trim r
      in
      rem := shifted;
      (* binary search for the largest d with b * d <= rem *)
      let lo = ref 0 and hi = ref (base - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if mag_compare (mag_mul_small b mid) !rem <= 0 then lo := mid else hi := mid - 1
      done;
      q.(i) <- !lo;
      if !lo > 0 then rem := mag_sub !rem (mag_mul_small b !lo)
    done;
    (trim q, !rem)
  end

(* Truncated division (rounds toward zero), like OCaml's [/] and [mod]. *)
let divmod x y =
  if y.sign = 0 then invalid_arg "Bigint.divmod: division by zero";
  let q, r = mag_divmod x.mag y.mag in
  (make (x.sign * y.sign) q, make x.sign r)

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

(* Euclidean: remainder always non-negative *)
let ediv_rem x y =
  let q, r = divmod x y in
  if r.sign >= 0 then (q, r)
  else if y.sign > 0 then (sub q one, add r y)
  else (add q one, sub r y)

(* native-int Euclid once both magnitudes fit in a machine word *)
let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let to_int_abs_opt x =
  let rec go acc i =
    if i < 0 then Some acc
    else
      let limb = x.mag.(i) in
      if acc > (max_int - limb) / base then None else go ((acc * base) + limb) (i - 1)
  in
  go 0 (Array.length x.mag - 1)

let rec gcd x y =
  let x = abs x and y = abs y in
  if is_zero y then x
  else begin
    match (to_int_abs_opt x, to_int_abs_opt y) with
    | Some a, Some b -> of_int (gcd_int (Stdlib.max a b) (Stdlib.min a b))
    | _ -> gcd y (rem x y)
  end

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n = if n = 0 then acc else if n land 1 = 1 then go (mul acc b) (mul b b) (n asr 1) else go acc (mul b b) (n asr 1) in
  go one x n

(* ---- conversions ---- *)

let to_int_opt x =
  (* fits iff |x| <= max_int *)
  let rec go acc i =
    if i < 0 then Some acc
    else
      let limb = x.mag.(i) in
      if acc > (max_int - limb) / base then None else go ((acc * base) + limb) (i - 1)
  in
  match go 0 (Array.length x.mag - 1) with
  | None -> None
  | Some m -> Some (if x.sign < 0 then -m else m)

let to_int_exn x =
  match to_int_opt x with Some i -> i | None -> failwith "Bigint.to_int_exn: out of range"

let to_float x =
  let m = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) x.mag 0.0 in
  if x.sign < 0 then -.m else m

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let b = Buffer.create 32 in
    if x.sign < 0 then Buffer.add_char b '-';
    let n = Array.length x.mag in
    Buffer.add_string b (string_of_int x.mag.(n - 1));
    for i = n - 2 downto 0 do
      Buffer.add_string b (Printf.sprintf "%0*d" base_digits x.mag.(i))
    done;
    Buffer.contents b
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let sign, start = match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0) in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  String.iter
    (fun c -> if not (c >= '0' && c <= '9' || c = '-' || c = '+') then invalid_arg "Bigint.of_string: bad char")
    s;
  (* parse 9 digits at a time from the right *)
  let ndigits = len - start in
  let nlimbs = (ndigits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  let pos = ref len in
  for i = 0 to nlimbs - 1 do
    let lo = Stdlib.max start (!pos - base_digits) in
    mag.(i) <- int_of_string (String.sub s lo (!pos - lo));
    pos := lo
  done;
  make sign mag

let pp fmt x = Format.pp_print_string fmt (to_string x)

let hash x = Hashtbl.hash (x.sign, x.mag)

(* number of decimal digits, for size heuristics *)
let num_digits x =
  let n = Array.length x.mag in
  if n = 0 then 1 else ((n - 1) * base_digits) + String.length (string_of_int x.mag.(n - 1))
