(** Exact rational arithmetic over {!Bigint}.

    Values are kept in lowest terms with a strictly positive denominator.
    Used throughout the LLL library for exact event probabilities and
    [Inc] ratios; floats appear only at the geometric boundary
    (the [S_rep] surface) and never in correctness-critical checks. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make n d] is the normalised rational [n/d].
    @raise Invalid_argument if [d] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints n d] is [n/d]. @raise Invalid_argument if [d = 0]. *)

val of_string : string -> t
(** Parses ["n"] or ["n/d"] in decimal. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val is_zero : t -> bool
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t

val pow : t -> int -> t
(** [pow x n]; negative [n] allowed when [x] is nonzero. *)

val pow2 : int -> t
(** [pow2 e] is [2^e]; [e] may be negative ([pow2 (-d)] is the LLL
    threshold probability [2^-d]). *)

val sum : t list -> t
val product : t list -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int
