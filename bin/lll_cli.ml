(* Command-line interface to the library.

   Subcommands:
     criteria  — build an instance family and print its criteria report
     solve     — solve an instance with a chosen algorithm and verify
     surface   — dump the Figure-1 surface f(a,b) as TSV
     triple    — check/decompose a representable triple

   Examples:
     lll_cli criteria --family sinkless --n 30 --degree 3
     lll_cli solve --family weak-splitting --n 16 --algo fix3
     lll_cli solve --family ring --n 64 --algo dist2 --seed 7
     lll_cli surface --steps 64 > surface.tsv
     lll_cli triple 0.25 1.5 0.1                                   *)

module Rat = Lll_num.Rat
module Gen = Lll_graph.Generators
module I = Lll_core.Instance
module Crit = Lll_core.Criteria
module Srep = Lll_core.Srep
module Syn = Lll_core.Synthetic
module F2 = Lll_core.Fix_rank2
module F3 = Lll_core.Fix_rank3
module MT = Lll_core.Moser_tardos
module D = Lll_core.Distributed
module V = Lll_core.Verify
module Sink = Lll_apps.Sinkless
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting
open Cmdliner

(* ---- instance families ---- *)

type family = Ring | Rank3 | Sinkless | Sinkless_relaxed | Hyper | Weak_splitting

let family_conv =
  let parse = function
    | "ring" -> Ok Ring
    | "rank3" -> Ok Rank3
    | "sinkless" -> Ok Sinkless
    | "sinkless-relaxed" -> Ok Sinkless_relaxed
    | "hyper" -> Ok Hyper
    | "weak-splitting" -> Ok Weak_splitting
    | s -> Error (`Msg (Printf.sprintf "unknown family %S" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with
      | Ring -> "ring"
      | Rank3 -> "rank3"
      | Sinkless -> "sinkless"
      | Sinkless_relaxed -> "sinkless-relaxed"
      | Hyper -> "hyper"
      | Weak_splitting -> "weak-splitting")
  in
  Arg.conv (parse, print)

let build_instance family ~n ~degree ~seed ~at_threshold =
  let position = if at_threshold then Syn.At_threshold else Syn.Below_threshold in
  match family with
  | Ring -> Syn.ring ~position ~seed ~n ~arity:4 ()
  | Rank3 -> Syn.random ~position ~seed ~n ~rank:3 ~delta:2 ~arity:8 ()
  | Sinkless -> Sink.instance (Gen.random_regular ~seed n degree)
  | Sinkless_relaxed -> Sink.relaxed_instance (Gen.random_regular ~seed n degree)
  | Hyper -> HO.instance (Gen.random_regular_hypergraph ~seed n 3 degree)
  | Weak_splitting ->
    WS.instance ~nv:n (Gen.random_biregular_bipartite ~seed ~nv:n ~nu:n ~deg_u:3 ~deg_v:3)

(* ---- shared args ---- *)

let family_arg =
  Arg.(value & opt family_conv Ring & info [ "family"; "f" ] ~docv:"FAMILY"
         ~doc:"Instance family: ring, rank3, sinkless, sinkless-relaxed, hyper, weak-splitting.")

let n_arg =
  Arg.(value & opt int 30 & info [ "size"; "n" ] ~docv:"N" ~doc:"Instance size (events/nodes).")
let degree_arg = Arg.(value & opt int 3 & info [ "degree"; "d" ] ~docv:"D" ~doc:"Structure degree.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Random seed.")

let at_threshold_arg =
  Arg.(value & flag & info [ "at-threshold" ] ~doc:"Place synthetic instances exactly at p = 2^-d.")

let file_arg =
  Arg.(value & opt (some string) None
       & info [ "file" ] ~docv:"PATH" ~doc:"Load the instance from a serialized file instead of generating one.")

let get_instance file family ~n ~degree ~seed ~at_threshold =
  match file with
  | Some path -> Lll_core.Serial.load path
  | None -> build_instance family ~n ~degree ~seed ~at_threshold

(* ---- gen ---- *)

let gen_cmd =
  let run family n degree seed at_threshold output =
    let inst = build_instance family ~n ~degree ~seed ~at_threshold in
    match output with
    | Some path ->
      Lll_core.Serial.save path inst;
      Format.printf "wrote %a to %s@." I.pp inst path
    | None -> print_string (Lll_core.Serial.to_string inst)
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"PATH" ~doc:"Write to a file instead of stdout.")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate an instance family and serialize it.")
    Term.(const run $ family_arg $ n_arg $ degree_arg $ seed_arg $ at_threshold_arg $ output)

(* ---- criteria ---- *)

let criteria_cmd =
  let run family n degree seed at_threshold file =
    let inst = get_instance file family ~n ~degree ~seed ~at_threshold in
    let rep = Crit.evaluate inst in
    Format.printf "%a@.%a" I.pp inst Crit.pp_report rep;
    Format.printf "recommended: %s@." (Crit.best_algorithm rep)
  in
  Cmd.v (Cmd.info "criteria" ~doc:"Print the criteria report of an instance family.")
    Term.(const run $ family_arg $ n_arg $ degree_arg $ seed_arg $ at_threshold_arg $ file_arg)

(* ---- solve ---- *)

type algo =
  | Fix2
  | Fix3
  | Fix3_exact
  | Fixr
  | Dist2
  | Dist3
  | Distr
  | Mp2
  | Mp3
  | Mt_seq
  | Mt_par
  | Union_bound

let algo_conv =
  let parse = function
    | "fix2" -> Ok Fix2
    | "fix3" -> Ok Fix3
    | "fix3-exact" | "fix3x" -> Ok Fix3_exact
    | "fixr" -> Ok Fixr
    | "dist2" -> Ok Dist2
    | "dist3" -> Ok Dist3
    | "distr" -> Ok Distr
    | "mp2" -> Ok Mp2
    | "mp3" -> Ok Mp3
    | "mt" | "mt-seq" -> Ok Mt_seq
    | "mt-par" -> Ok Mt_par
    | "union-bound" | "cond-exp" -> Ok Union_bound
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print fmt a =
    Format.pp_print_string fmt
      (match a with
      | Fix2 -> "fix2"
      | Fix3 -> "fix3"
      | Fix3_exact -> "fix3-exact"
      | Fixr -> "fixr"
      | Dist2 -> "dist2"
      | Dist3 -> "dist3"
      | Distr -> "distr"
      | Mp2 -> "mp2"
      | Mp3 -> "mp3"
      | Mt_seq -> "mt-seq"
      | Mt_par -> "mt-par"
      | Union_bound -> "union-bound")
  in
  Arg.conv (parse, print)

let algo_arg =
  Arg.(value & opt algo_conv Fix3 & info [ "algo"; "a" ] ~docv:"ALGO"
         ~doc:"Algorithm: fix2, fix3, fix3-exact, fixr, dist2, dist3, distr, mp2, mp3 \
               (message-passing protocols on the LOCAL runtime), mt-seq, mt-par, union-bound.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the fixing trace (fix2/fix3 only).")

let domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"K"
           ~doc:"Number of OCaml domains for the LOCAL runtime (default: the machine's \
                 recommended domain count; 1 forces the sequential engine).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"PATH"
           ~doc:"Write per-round runtime metrics (wall time, messages, nodes stepped, halted \
                 fraction, state-size proxy) as JSON to PATH. Distributed algorithms only.")

let solve_cmd =
  let run family n degree seed at_threshold file algo trace domains metrics_path =
    let inst = get_instance file family ~n ~degree ~seed ~at_threshold in
    let metrics =
      match metrics_path with Some _ -> Lll_local.Metrics.buffer () | None -> Lll_local.Metrics.disabled
    in
    let dump_metrics () =
      match metrics_path with
      | None -> ()
      | Some path ->
        let recs = Lll_local.Metrics.records metrics in
        Lll_local.Metrics.write_json path recs;
        Format.printf "metrics: %d round records (%d messages, %.2f ms) -> %s@."
          (List.length recs)
          (Lll_local.Metrics.total_messages recs)
          (float_of_int (Lll_local.Metrics.total_wall_ns recs) /. 1e6)
          path
    in
    Format.printf "%a@." I.pp inst;
    let var_name vid = Lll_prob.Var.name (Lll_core.Instance.space inst |> fun sp -> Lll_prob.Space.var sp vid) in
    let describe ok rounds extra =
      Format.printf "solved: %b%s%s@." ok
        (match rounds with Some r -> Printf.sprintf " in %d LOCAL rounds" r | None -> "")
        extra;
      if not ok then exit 1
    in
    (match algo with
    | Fix2 ->
      let a, t = F2.solve inst in
      if trace then
        List.iter
          (fun (s : F2.step) ->
            Format.printf "  fix %s := %d  (score %s <= budget %s)@." (var_name s.F2.var)
              s.F2.value (Rat.to_string s.F2.score) (Rat.to_string s.F2.budget))
          (F2.steps t);
      describe (V.avoids_all inst a) None
        (Printf.sprintf " (P*: %b)" (F2.pstar_holds t))
    | Fix3 ->
      let a, t = F3.solve inst in
      if trace then
        List.iter
          (fun (s : F3.step) ->
            Format.printf "  fix %s := %d  (S_rep violation %.2e)@." (var_name s.F3.var)
              s.F3.value s.F3.violation)
          (F3.steps t);
      describe (V.avoids_all inst a) None
        (Printf.sprintf " (P*: %b, max violation %.2e)" (F3.pstar_holds t) (F3.max_violation t))
    | Fix3_exact ->
      let a, t = Lll_core.Fix_rank3_exact.solve inst in
      describe (V.avoids_all inst a) None
        (Printf.sprintf " (P* EXACT: %b, fallbacks %d)"
           (Lll_core.Fix_rank3_exact.pstar_holds_exact t)
           (Lll_core.Fix_rank3_exact.fallbacks t))
    | Fixr ->
      let a, t = Lll_core.Fix_rankr.solve inst in
      describe (V.avoids_all inst a) None
        (Printf.sprintf " (min slack %.2e, %d infeasible steps)"
           (Lll_core.Fix_rankr.min_slack t)
           (Lll_core.Fix_rankr.infeasible_steps t))
    | Union_bound ->
      let a, phi = Lll_core.Cond_exp.solve inst in
      describe (V.avoids_all inst a) None
        (Printf.sprintf " (union-bound criterion %s, final phi = %s)"
           (if Lll_core.Cond_exp.criterion_holds inst then "holds" else "FAILS")
           (Rat.to_string phi))
    | Distr ->
      let r = D.solve_rankr ?domains ~metrics inst in
      dump_metrics ();
      describe r.D.ok (Some r.D.rounds)
        (Printf.sprintf " (coloring %d + sweep %d)" r.D.coloring_rounds r.D.sweep_rounds)
    | Dist2 ->
      let r = D.solve_rank2 ?domains ~metrics inst in
      dump_metrics ();
      describe r.D.ok (Some r.D.rounds)
        (Printf.sprintf " (coloring %d + sweep %d)" r.D.coloring_rounds r.D.sweep_rounds)
    | Dist3 ->
      let r = D.solve_rank3 ?domains ~metrics inst in
      dump_metrics ();
      describe r.D.ok (Some r.D.rounds)
        (Printf.sprintf " (coloring %d + sweep %d)" r.D.coloring_rounds r.D.sweep_rounds)
    | Mp2 ->
      let r = Lll_core.Dist_lll.solve_rank2 ?domains ~metrics inst in
      dump_metrics ();
      describe r.Lll_core.Dist_lll.ok (Some r.Lll_core.Dist_lll.rounds)
        (Printf.sprintf " (coloring %d + sweep %d)" r.Lll_core.Dist_lll.coloring_rounds
           r.Lll_core.Dist_lll.sweep_rounds)
    | Mp3 ->
      let r = Lll_core.Dist_lll.solve ?domains ~metrics inst in
      dump_metrics ();
      describe r.Lll_core.Dist_lll.ok (Some r.Lll_core.Dist_lll.rounds)
        (Printf.sprintf " (coloring %d + sweep %d)" r.Lll_core.Dist_lll.coloring_rounds
           r.Lll_core.Dist_lll.sweep_rounds)
    | Mt_seq ->
      let a, s = MT.solve_sequential ~seed inst in
      describe (V.avoids_all inst a) None (Printf.sprintf " (%d resamplings)" s.MT.resamplings)
    | Mt_par ->
      let a, s = MT.solve_parallel ~seed inst in
      describe (V.avoids_all inst a) (Some s.MT.rounds) "")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve an instance with a chosen algorithm and verify exactly.")
    Term.(
      const run $ family_arg $ n_arg $ degree_arg $ seed_arg $ at_threshold_arg $ file_arg
      $ algo_arg $ trace_arg $ domains_arg $ metrics_arg)

(* ---- surface ---- *)

let surface_cmd =
  let run steps =
    Format.printf "a\tb\tf@.";
    List.iter (fun (a, b, c) -> Format.printf "%.6f\t%.6f\t%.6f@." a b c)
      (Srep.surface_grid ~steps)
  in
  let steps = Arg.(value & opt int 32 & info [ "steps" ] ~docv:"K" ~doc:"Grid resolution.") in
  Cmd.v (Cmd.info "surface" ~doc:"Dump the Figure-1 surface f(a,b) as TSV.")
    Term.(const run $ steps)

(* ---- triple ---- *)

let triple_cmd =
  let run a b c =
    let t = (a, b, c) in
    Format.printf "triple (%g, %g, %g)@." a b c;
    Format.printf "representable: %b (violation %.3e)@." (Srep.mem t) (Srep.violation t);
    if Srep.mem t then begin
      let d = Srep.decompose t in
      Format.printf "witness: a1=%.6f a2=%.6f b1=%.6f b3=%.6f c2=%.6f c3=%.6f@." d.a1 d.a2 d.b1
        d.b3 d.c2 d.c3
    end
  in
  let pos i name = Arg.(required & pos i (some float) None & info [] ~docv:name) in
  Cmd.v
    (Cmd.info "triple" ~doc:"Check and decompose a triple against S_rep (Definition 3.3).")
    Term.(const run $ pos 0 "A" $ pos 1 "B" $ pos 2 "C")

let () =
  let doc = "Distributed Lovász Local Lemma at the sharp threshold (Brandt–Maus–Uitto, PODC'19)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "lll_cli" ~doc) [ gen_cmd; criteria_cmd; solve_cmd; surface_cmd; triple_cmd ]))
