(* Command-line interface to the library.

   Subcommands:
     criteria  — build an instance family and print its criteria report
     solve     — solve an instance with any registered solver and verify
     solvers   — list the solver registry with capability envelopes
     surface   — dump the Figure-1 surface f(a,b) as TSV
     triple    — check/decompose a representable triple
     fuzz      — adversarial fuzz-and-shrink over the solver registry
     scenario  — threshold corpus round-count measurement / regression
     convert   — rewrite a serialized instance between text v2 and binary v3
     serve     — persistent solve service (unix socket or stdio framing)
     client    — talk to a running server (or spawn one) over the frame protocol

   Every engine lives behind the Solver registry: `--solver NAME` picks
   one, `--list-solvers` enumerates them, and every run goes through the
   shared post-condition (exact Verify.check plus the engine's P* claim).

   Examples:
     lll_cli criteria --family sinkless --n 30 --degree 3
     lll_cli solve --family weak-splitting --n 16 --solver fix3
     lll_cli solve --family ring --n 64 --solver dist2 --seed 7
     lll_cli --list-solvers
     lll_cli surface --steps 64 > surface.tsv
     lll_cli triple 0.25 1.5 0.1                                   *)

module Rat = Lll_num.Rat
module Gen = Lll_graph.Generators
module I = Lll_core.Instance
module Crit = Lll_core.Criteria
module Srep = Lll_core.Srep
module Syn = Lll_core.Synthetic
module Solver = Lll_core.Solver
module Sink = Lll_apps.Sinkless
module Spec = Lll_store.Spec
module Store = Lll_store.Store

(* the application engines (sinkless-orient, weak-split-greedy) register
   themselves on first use; pull them in before any registry lookup *)
let () = Lll_apps.App_engines.ensure_registered ()
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting
open Cmdliner

(* ---- instance families ---- *)

type family = Ring | Rank3 | Sinkless | Sinkless_relaxed | Hyper | Weak_splitting

let family_to_string = function
  | Ring -> "ring"
  | Rank3 -> "rank3"
  | Sinkless -> "sinkless"
  | Sinkless_relaxed -> "sinkless-relaxed"
  | Hyper -> "hyper"
  | Weak_splitting -> "weak-splitting"

let family_conv =
  let parse = function
    | "ring" -> Ok Ring
    | "rank3" -> Ok Rank3
    | "sinkless" -> Ok Sinkless
    | "sinkless-relaxed" -> Ok Sinkless_relaxed
    | "hyper" -> Ok Hyper
    | "weak-splitting" -> Ok Weak_splitting
    | s -> Error (`Msg (Printf.sprintf "unknown family %S" s))
  in
  let print fmt f = Format.pp_print_string fmt (family_to_string f) in
  Arg.conv (parse, print)

(* every CLI generation goes through the spec codec and a store: with
   --store DIR the instance is materialized as (or loaded from) a
   content-addressed artifact, without it the store is memory-only *)
let spec_of_family family ~n ~degree ~seed ~at_threshold =
  Spec.of_family_params ~family:(family_to_string family) ~n ~degree ~seed ~at_threshold

let make_store store_dir = Store.create ?dir:store_dir ()

let build_instance ?store_dir family ~n ~degree ~seed ~at_threshold =
  let store = make_store store_dir in
  fst (Store.fetch store (spec_of_family family ~n ~degree ~seed ~at_threshold))

(* ---- shared args ---- *)

let family_arg =
  Arg.(value & opt family_conv Ring & info [ "family"; "f" ] ~docv:"FAMILY"
         ~doc:"Instance family: ring, rank3, sinkless, sinkless-relaxed, hyper, weak-splitting.")

let n_arg =
  Arg.(value & opt int 30 & info [ "size"; "n" ] ~docv:"N" ~doc:"Instance size (events/nodes).")
let degree_arg = Arg.(value & opt int 3 & info [ "degree"; "d" ] ~docv:"D" ~doc:"Structure degree.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Random seed.")

let at_threshold_arg =
  Arg.(value & flag & info [ "at-threshold" ] ~doc:"Place synthetic instances exactly at p = 2^-d.")

let file_arg =
  Arg.(value & opt (some string) None
       & info [ "file"; "load-instance" ] ~docv:"PATH"
           ~doc:"Load the instance from a serialized file (text v1/v2 or binary v3, \
                 auto-detected) instead of generating one.")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Artifact store directory: generated instances are materialized as \
                 content-addressed binary v3 artifacts and reloaded via mmap on repeat runs.")

let get_instance ?store_dir file family ~n ~degree ~seed ~at_threshold =
  let store = make_store store_dir in
  match file with
  | Some path -> fst (Store.fetch_descr store (Store.Of_file path))
  | None -> fst (Store.fetch store (spec_of_family family ~n ~degree ~seed ~at_threshold))

(* ---- gen ---- *)

let gen_cmd =
  let run family n degree seed at_threshold output binary store_dir =
    let spec = spec_of_family family ~n ~degree ~seed ~at_threshold in
    (match store_dir with
    | Some _ ->
      let store = make_store store_dir in
      let path = Store.materialize store spec in
      Format.printf "store artifact %s@.  spec %s@.  key  %s@." path (Spec.to_string spec)
        (Spec.key spec)
    | None -> ());
    let inst = build_instance ?store_dir family ~n ~degree ~seed ~at_threshold in
    match output with
    | Some path ->
      if binary then Lll_core.Serial.save_binary path inst
      else Lll_core.Serial.save path inst;
      Format.printf "wrote %a to %s (%s)@." I.pp inst path (if binary then "binary v3" else "text v2")
    | None ->
      if binary then begin
        set_binary_mode_out stdout true;
        print_string (Lll_core.Serial.to_binary_string inst)
      end
      else if store_dir = None then print_string (Lll_core.Serial.to_string inst)
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"PATH" ~doc:"Write to a file instead of stdout.")
  in
  let binary =
    Arg.(value & flag
         & info [ "binary" ] ~doc:"Emit the binary v3 container instead of the text v2 format.")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate an instance family and serialize it.")
    Term.(const run $ family_arg $ n_arg $ degree_arg $ seed_arg $ at_threshold_arg $ output
          $ binary $ store_arg)

(* ---- convert: lossless text v2 <-> binary v3 ---- *)

let convert_cmd =
  let run input output to_format =
    let inst =
      try Lll_core.Serial.load_any input
      with
      | Lll_core.Serial.Parse_error { line; message } ->
        Format.eprintf "convert: %s:%d: %s@." input line message;
        exit 2
      | Lll_graph.Serialize.Bin.Corrupt msg ->
        Format.eprintf "convert: %s: corrupt binary: %s@." input msg;
        exit 2
    in
    let binary =
      match to_format with
      | Some "binary" -> true
      | Some "text" -> false
      | Some other ->
        Format.eprintf "convert: unknown target format %S (binary|text)@." other;
        exit 2
      | None ->
        (* default: flip whatever the input was *)
        let ic = open_in_bin input in
        let probe = really_input_string ic (min 4 (in_channel_length ic)) in
        close_in ic;
        not (Lll_core.Serial.is_binary probe)
    in
    if binary then Lll_core.Serial.save_binary output inst
    else Lll_core.Serial.save output inst;
    Format.printf "converted %a: %s -> %s (%s)@." I.pp inst input output
      (if binary then "binary v3" else "text v2")
  in
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT") in
  let to_format =
    Arg.(value & opt (some string) None
         & info [ "to" ] ~docv:"FORMAT"
             ~doc:"Target format: binary or text (default: the opposite of the input).")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Rewrite a serialized instance between the text v2 interchange format and the \
             binary v3 container; the conversion is lossless in both directions.")
    Term.(const run $ input $ output $ to_format)

(* ---- criteria ---- *)

let criteria_cmd =
  let run family n degree seed at_threshold file store_dir =
    let inst = get_instance ?store_dir file family ~n ~degree ~seed ~at_threshold in
    let rep = Crit.evaluate inst in
    Format.printf "%a@.%a" I.pp inst Crit.pp_report rep;
    Format.printf "recommended: %s@." (Crit.best_algorithm rep)
  in
  Cmd.v (Cmd.info "criteria" ~doc:"Print the criteria report of an instance family.")
    Term.(const run $ family_arg $ n_arg $ degree_arg $ seed_arg $ at_threshold_arg $ file_arg
          $ store_arg)

(* ---- solve: one registry-driven loop for every engine ---- *)

let print_solver_list () =
  Format.printf "%-14s %-32s %s@." "name" "capabilities" "description";
  Format.printf "%s@." (String.make 78 '-');
  List.iter
    (fun s ->
      Format.printf "%-14s %-32s %s@." (Solver.name s)
        (Format.asprintf "%a" Solver.pp_caps (Solver.caps s))
        (Solver.doc s))
    (Solver.all ())

let solver_conv =
  let parse s =
    match Solver.find s with
    | Some _ -> Ok s
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown solver %S; registered: %s" s
              (String.concat ", " (Solver.names ()))))
  in
  Arg.conv (parse, Format.pp_print_string)

let solver_arg =
  Arg.(value & opt solver_conv "fix3" & info [ "solver"; "algo"; "a" ] ~docv:"NAME"
         ~doc:"Registered solver engine (see --list-solvers).")

let list_solvers_arg =
  Arg.(value & flag & info [ "list-solvers" ]
         ~doc:"List every registered solver with its capability envelope and exit.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the uniform fixing trace (engines that record one).")

let domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"K"
           ~doc:"Number of OCaml domains for the LOCAL runtime (default: the machine's \
                 recommended domain count; 1 forces the sequential engine).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"PATH"
           ~doc:"Write per-round runtime metrics (wall time, messages, nodes stepped, halted \
                 fraction, state-size proxy) as JSON to PATH. Distributed algorithms only.")

let backend_conv =
  let parse = function
    | "enum" -> Ok Lll_prob.Space.Enum
    | "table" -> Ok Lll_prob.Space.Table
    | s -> Error (`Msg (Printf.sprintf "unknown probability backend %S (enum|table)" s))
  in
  let print fmt b =
    Format.pp_print_string fmt
      (match b with Lll_prob.Space.Enum -> "enum" | Lll_prob.Space.Table -> "table")
  in
  Arg.conv (parse, print)

let prob_backend_arg =
  Arg.(value & opt (some backend_conv) None
       & info [ "prob-backend" ] ~docv:"BACKEND"
           ~doc:"Probability backend: 'table' answers conditional probabilities from compiled \
                 event tables, 'enum' re-enumerates event scopes. Both are exact; results are \
                 identical.")

let dump_instance_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-instance" ] ~docv:"PATH"
           ~doc:"Serialize the instance (v2 weighted-table format) to PATH before solving.")

let solve_cmd =
  let run family n degree seed at_threshold file store_dir list_solvers solver_name trace
      domains metrics_path prob_backend dump_instance =
    if list_solvers then print_solver_list ()
    else begin
      let inst = get_instance ?store_dir file family ~n ~degree ~seed ~at_threshold in
      (match dump_instance with
      | None -> ()
      | Some path ->
        Lll_core.Serial.save path inst;
        Format.printf "dumped %a to %s@." I.pp inst path);
      let solver = Solver.find_exn solver_name in
      if not (Solver.applicable solver inst) then begin
        Format.eprintf "solver %s does not accept %a (capabilities: %a)@." solver_name I.pp
          inst Solver.pp_caps (Solver.caps solver);
        exit 2
      end;
      let metrics =
        match metrics_path with
        | Some _ -> Lll_local.Metrics.buffer ()
        | None -> Lll_local.Metrics.disabled
      in
      let params = { Solver.default_params with seed; domains; metrics; prob_backend } in
      Format.printf "%a@." I.pp inst;
      if not (Solver.guarantees solver inst) then
        Format.printf "note: %s's criterion does not hold here; run is best-effort@."
          solver_name;
      let report = Solver.solve ~params solver inst in
      if trace then begin
        let sp = I.space inst in
        match report.Solver.outcome.Solver.trace with
        | [] -> Format.printf "  (no step trace recorded by %s)@." solver_name
        | steps ->
          List.iter
            (fun (s : Solver.step) ->
              Format.printf "  fix %s := %d%s%s@."
                (Lll_prob.Var.name (Lll_prob.Space.var sp s.Solver.var))
                s.Solver.value
                (match s.Solver.srep_violation with
                | Some v -> Printf.sprintf "  (S_rep violation %.2e)" v
                | None -> "")
                (match s.Solver.incs with
                | [] -> ""
                | incs ->
                  "  [" ^ String.concat ", "
                    (List.map (fun (e, r) -> Printf.sprintf "Inc(%d)=%s" e (Rat.to_string r)) incs)
                  ^ "]"))
            steps
      end;
      (match metrics_path with
      | None -> ()
      | Some path ->
        let recs = Lll_local.Metrics.records metrics in
        Lll_local.Metrics.write_json path recs;
        Format.printf "metrics: %d round records (%d messages, %.2f ms) -> %s@."
          (List.length recs)
          (Lll_local.Metrics.total_messages recs)
          (float_of_int (Lll_local.Metrics.total_wall_ns recs) /. 1e6)
          path);
      Format.printf "%a@." Solver.pp_report report;
      if not report.Solver.ok then exit 1
    end
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Solve an instance with any registered engine; every run ends in the shared \
             post-condition (exact verification plus the engine's P* claim).")
    Term.(
      const run $ family_arg $ n_arg $ degree_arg $ seed_arg $ at_threshold_arg $ file_arg
      $ store_arg $ list_solvers_arg $ solver_arg $ trace_arg $ domains_arg $ metrics_arg
      $ prob_backend_arg $ dump_instance_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run seed budget engines out self_test geometry_samples store_dir =
    let module Fuzz = Lll_fuzz.Fuzz in
    let dump_to_store f =
      match store_dir with
      | None -> ()
      | Some _ ->
        let digest, path = Fuzz.dump_reproducer_store (make_store store_dir) f in
        Format.printf "  reproducer artifact %s (key blob:%s)@." path digest
    in
    let log line = Format.eprintf "%s@." line in
    let resolve_engines () =
      match engines with
      | None -> Ok (Solver.all ())
      | Some spec -> (
        let names = String.split_on_char ',' spec |> List.map String.trim in
        match List.find_opt (fun n -> Solver.find n = None) names with
        | Some bad ->
          Error
            (Printf.sprintf "unknown engine %S; registered: %s" bad
               (String.concat ", " (Solver.names ())))
        | None -> Ok (List.map Solver.find_exn names))
    in
    if self_test then begin
      (* the fuzzer fuzzing itself: inject the perturbed-phi mutant and
         demand the harness catches it and shrinks the reproducer *)
      let outcome = Fuzz.self_test ~seed ~budget ~log () in
      match outcome.Fuzz.finding with
      | None ->
        Format.eprintf
          "self-test FAILED: the harness did not catch the injected phi mutation in %d \
           instances@."
        outcome.Fuzz.tested;
        exit 1
      | Some f ->
        let events = I.num_events f.Fuzz.shrunk in
        Format.printf "self-test: caught the injected mutation on instance %d (%s)@."
          outcome.Fuzz.tested f.Fuzz.label;
        Format.printf "  %a@." Fuzz.pp_violation f.Fuzz.violation;
        Format.printf "  shrunk reproducer: %a@." I.pp f.Fuzz.shrunk;
        ignore (Fuzz.dump_reproducer out f);
        Format.printf "  reproducer written to %s@." out;
        dump_to_store f;
        if events > 4 then begin
          Format.eprintf "self-test FAILED: reproducer has %d events (want <= 4)@." events;
          exit 1
        end
    end
    else begin
      match resolve_engines () with
      | Error msg ->
        Format.eprintf "%s@." msg;
        exit 2
      | Ok engines -> (
        (match Fuzz.fuzz_geometry ~seed ~samples:geometry_samples () with
        | None -> Format.printf "geometry oracle: %d boundary triples clean@." geometry_samples
        | Some ((a, b, c), reason) ->
          Format.printf "geometry oracle VIOLATION on (%.17g, %.17g, %.17g): %s@." a b c reason;
          exit 1);
        let outcome = Fuzz.run ~engines ~log ~seed ~budget () in
        match outcome.Fuzz.finding with
        | None ->
          Format.printf "fuzz: %d instances x %d engines x 2 backends clean@." outcome.Fuzz.tested
            (List.length engines)
        | Some f ->
          Format.printf "fuzz VIOLATION on instance %d (%s):@." outcome.Fuzz.tested f.Fuzz.label;
          Format.printf "  %a@." Fuzz.pp_violation f.Fuzz.violation;
          Format.printf "  shrunk reproducer: %a@." I.pp f.Fuzz.shrunk;
          ignore (Fuzz.dump_reproducer out f);
          Format.printf "  reproducer written to %s (reload: lll_cli solve --file %s)@." out out;
          dump_to_store f;
          exit 1)
    end
  in
  let budget_arg =
    Arg.(value & opt int 100
         & info [ "budget" ] ~docv:"N" ~doc:"Number of hostile instances to generate.")
  in
  let engines_arg =
    Arg.(value & opt (some string) None
         & info [ "engines" ] ~docv:"NAMES"
             ~doc:"Comma-separated engine filter (default: every registered engine).")
  in
  let out_arg =
    Arg.(value & opt string "fuzz-repro.lll"
         & info [ "out"; "o" ] ~docv:"PATH"
             ~doc:"Where to dump the shrunk reproducer (Serialize v2) on a violation.")
  in
  let self_test_arg =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"Fuzz the fault-injected fix3 clone (perturbed phi update) instead of the \
                   honest engines; exits non-zero unless the harness catches it and shrinks \
                   the reproducer to at most 4 events.")
  in
  let geometry_arg =
    Arg.(value & opt int 10_000
         & info [ "geometry-samples" ] ~docv:"N"
             ~doc:"Boundary triples to feed the S_rep geometry oracle before instance fuzzing.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Adversarial fuzz-and-shrink: threshold-hugging instances, every applicable \
             engine under both probability backends, backend-identical assignments, the \
             guarantee predicate vs exact verification, and an independent P* replay of \
             every trace. Violations are shrunk greedily and dumped as v2 reproducers.")
    Term.(
      const run $ seed_arg $ budget_arg $ engines_arg $ out_arg $ self_test_arg $ geometry_arg
      $ store_arg)

(* ---- scenario ---- *)

let scenario_cmd =
  let module Corpus = Lll_scenario.Corpus in
  let module Run = Lll_scenario.Run in
  let module Baseline = Lll_scenario.Baseline in
  (* the --record dirty-tree guard: uncommitted changes must not leak
     into a checked-in regression artifact. Outside a git checkout (or
     with git unavailable) the guard is moot and records proceed. *)
  let dirty_tree () =
    try
      let ic = Unix.open_process_in "git status --porcelain 2>/dev/null" in
      let rec lines acc =
        match input_line ic with
        | l -> lines (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      let out = lines [] in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when out <> [] -> Some (String.concat "\n" out)
      | _ -> None
    with _ -> None
  in
  let parse_int_list what v =
    match v with
    | None -> None
    | Some spec ->
      Some
        (String.split_on_char ',' spec
        |> List.filter (fun c -> c <> "")
        |> List.map (fun c ->
               match int_of_string_opt (String.trim c) with
               | Some v -> v
               | None ->
                 Format.eprintf "scenario: bad %s entry %S@." what c;
                 exit 2))
  in
  let run check record force baselines domains via_serve store_dir grid seeds families =
    (* --domains only overrides the fan-out width; the determinism
       contract keeps every round count identical to the pinned
       [Some 1] default, so checks stay valid at any width. *)
    let raw_domains = domains in
    let domains = match domains with None -> None | Some k -> Some (Some k) in
    let grid = parse_int_list "--grid" grid in
    let seeds = parse_int_list "--seeds" seeds in
    let families =
      match families with
      | None -> None
      | Some spec ->
        Some
          (String.split_on_char ',' spec
          |> List.filter (fun c -> c <> "")
          |> List.map (fun name ->
                 match Corpus.find (String.trim name) with
                 | Some f -> f
                 | None ->
                   Format.eprintf "scenario: unknown family %S@." name;
                   exit 2))
    in
    if (check || record) && (grid <> None || seeds <> None || families <> None) then begin
      Format.eprintf
        "--grid/--seeds/--families apply to the plain measurement report only (checks use \
         the baseline's grid, records use the default)@.";
      exit 2
    end;
    let store = make_store store_dir in
    if check && record then begin
      Format.eprintf "--check and --record are mutually exclusive@.";
      exit 2
    end;
    if via_serve then begin
      if check || record then begin
        Format.eprintf "--via-serve only supports the plain measurement report@.";
        exit 2
      end;
      (* the measurement sweep routed through an in-process serve
         session: same scheduler/cache/protocol stack as a socket
         server, minus the socket *)
      let sched = Lll_serve.Sched.create ?domains:raw_domains ?store_dir () in
      let frame =
        { Lll_serve.Protocol.header = [ ("op", "scenario") ]; body = "" }
      in
      let result = ref None in
      (match
         Lll_serve.Sched.handle_batch sched [ frame ] ~emit:(fun f ->
             if Lll_serve.Protocol.get f "frame" = Some "result" then result := Some f)
       with
      | `Continue | `Shutdown -> ());
      match !result with
      | Some r when Lll_serve.Protocol.get r "status" = Some "ok" ->
        print_string r.Lll_serve.Protocol.body
      | Some r ->
        Format.eprintf "scenario --via-serve failed: %s@."
          (Option.value (Lll_serve.Protocol.get r "error") ~default:"unknown error");
        exit 1
      | None ->
        Format.eprintf "scenario --via-serve: no result frame@.";
        exit 1
    end
    else if check then begin
      let b =
        try Baseline.load baselines
        with
        | Sys_error msg ->
          Format.eprintf "scenario: cannot read baselines: %s@." msg;
          exit 2
        | Failure msg ->
          Format.eprintf "scenario: %s@." msg;
          exit 2
      in
      let ms = Run.measure ~grid:b.Baseline.grid ~seeds:b.Baseline.seeds ?domains ~store () in
      match Baseline.check b ms with
      | [] ->
        Format.printf "scenario check: %d measurements within %d bands, %d O(1) witnesses hold@."
          (List.length ms)
          (List.length b.Baseline.entries)
          (List.length b.Baseline.witnesses)
      | fails ->
        List.iter (fun f -> Format.printf "scenario DRIFT: %s@." f) fails;
        Format.printf "scenario check: %d failure(s) against %s@." (List.length fails) baselines;
        exit 1
    end
    else if record then begin
      (if Sys.file_exists baselines && not force then
         match dirty_tree () with
         | Some status ->
           Format.eprintf
             "scenario: refusing to overwrite %s from a dirty working tree (commit first or \
              pass --force):@.%s@."
             baselines status;
           exit 2
         | None -> ());
      let ms = Run.measure ?domains ~store () in
      let fits = Run.fit_growth ms in
      let b =
        Baseline.of_measurements ~grid:Corpus.default_grid ~seeds:Corpus.default_seeds ms fits
      in
      Baseline.save baselines b;
      Format.printf "scenario: recorded %d bands, %d O(1) witnesses to %s@."
        (List.length b.Baseline.entries)
        (List.length b.Baseline.witnesses)
        baselines
    end
    else begin
      let ms = Run.measure ?grid ?seeds ?families ?domains ~store () in
      Format.printf "%a@." Run.pp_measurements ms;
      Format.printf "%a@." Run.pp_fits (Run.fit_growth ms)
    end
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Re-measure on the baseline's grid and exit non-zero on any round count \
                   outside its tolerance band or any lost sub-threshold O(1) witness.")
  in
  let record_arg =
    Arg.(value & flag
         & info [ "record" ]
             ~doc:"Measure the default grid and (re)write the baseline artifact. Refuses to \
                   overwrite an existing artifact from a dirty git tree.")
  in
  let force_arg =
    Arg.(value & flag
         & info [ "force" ] ~doc:"Override the dirty-working-tree guard of $(b,--record).")
  in
  let baselines_arg =
    Arg.(value & opt string "scenario_baselines.json"
         & info [ "baselines" ] ~docv:"PATH" ~doc:"Baseline artifact location.")
  in
  let grid_arg =
    Arg.(value & opt (some string) None
         & info [ "grid" ] ~docv:"N,N,..."
             ~doc:"Comma-separated sizes for the plain measurement report (default: the \
                   corpus grid).")
  in
  let seeds_arg =
    Arg.(value & opt (some string) None
         & info [ "seeds" ] ~docv:"S,S,..."
             ~doc:"Comma-separated seeds for the plain measurement report.")
  in
  let families_arg =
    Arg.(value & opt (some string) None
         & info [ "families" ] ~docv:"NAMES"
             ~doc:"Comma-separated corpus family filter for the plain measurement report.")
  in
  let via_serve_arg =
    Arg.(value & flag
         & info [ "via-serve" ]
             ~doc:"Route the measurement sweep through an in-process solve-service session \
                   (same scheduler and protocol as $(b,serve)) instead of calling the \
                   library directly.")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Threshold-sharpness corpus: run every round-accounted engine over the \
             threshold-straddling workload families, fit round counts against log log n / \
             log n envelopes, and check or record the regression baselines.")
    Term.(const run $ check_arg $ record_arg $ force_arg $ baselines_arg $ domains_arg
          $ via_serve_arg $ store_arg $ grid_arg $ seeds_arg $ families_arg)

(* ---- serve / client ---- *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket stdio cache domains workers max_frame store_dir =
    match (socket, stdio) with
    | Some _, true ->
      Format.eprintf "serve: --socket and --stdio are mutually exclusive@.";
      exit 2
    | None, false ->
      Format.eprintf "serve: pick a transport: --socket PATH or --stdio@.";
      exit 2
    | Some path, false -> (
      Format.eprintf "serving on %s (cache %d, %d worker%s)@." path cache workers
        (if workers = 1 then "" else "s");
      try
        Lll_serve.Serve.serve_socket ~capacity:cache ?domains ?store_dir:store_dir ~workers
          ?max_frame ~path ()
      with Lll_serve.Serve.Socket_busy { path; reason } ->
        Format.eprintf "serve: refusing to claim %s: %s@." path reason;
        exit 1)
    | None, true ->
      Lll_serve.Serve.serve_stdio ~capacity:cache ?domains ?store_dir:store_dir ?max_frame ()
  in
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ] ~doc:"Serve length-framed requests on stdin/stdout (the \
                                  child-process transport of $(b,client --spawn)).")
  in
  let cache =
    Arg.(value & opt int 32
         & info [ "cache" ] ~docv:"N" ~doc:"LRU instance-cache capacity.")
  in
  let workers =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains serving accepted connections concurrently \
                   (socket transport only).")
  in
  let max_frame =
    Arg.(value & opt (some int) None
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Reject request frames longer than this before reading their body \
                   (default 2^30; minimum 4096).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Persistent solve service: an LRU instance cache plus a batching scheduler \
             behind a length-framed request protocol, optionally fanned out over a pool \
             of worker domains. Requests describe instances by generator spec, \
             serialized blob, or server-local file; repeat requests hit the cache with \
             zero rebuild work and bit-identical solver output.")
    Term.(const run $ socket_arg $ stdio $ cache $ domains_arg $ workers $ max_frame
          $ store_arg)

let client_cmd =
  let run socket spawn smoke op family n degree seed solver stream concurrency workers =
    if concurrency > 1 then begin
      (* the fleet smoke: a private socket-server child on a
         collision-free temp path, hammered by concurrent clients *)
      if not smoke then begin
        Format.eprintf "client: --concurrency pairs with --smoke@.";
        exit 2
      end;
      let srv = Lll_serve.Client.spawn_server ~workers () in
      Fun.protect
        ~finally:(fun () -> Lll_serve.Client.stop_server srv)
        (fun () ->
          match
            Lll_serve.Client.smoke_fleet ~clients:concurrency
              (Lll_serve.Client.server_path srv)
          with
          | Ok () ->
            Format.printf
              "serve fleet smoke: %d clients on %d worker%s, build-once + identical \
               output OK@."
              concurrency workers
              (if workers = 1 then "" else "s")
          | Error reason ->
            Format.eprintf "serve fleet smoke FAILED: %s@." reason;
            exit 1)
    end
    else begin
    let conn =
      match (socket, spawn) with
      | Some path, false -> Lll_serve.Client.connect_socket path
      | None, true -> Lll_serve.Client.spawn ()
      | Some _, true ->
        Format.eprintf "client: --socket and --spawn are mutually exclusive@.";
        exit 2
      | None, false ->
        Format.eprintf "client: pick a server: --socket PATH or --spawn@.";
        exit 2
    in
    (* a spawned child is ours to stop; a shared socket server stays up *)
    let finally () =
      if spawn then Lll_serve.Client.shutdown conn else Lll_serve.Client.close conn
    in
    Fun.protect ~finally (fun () ->
        if smoke then begin
          match Lll_serve.Client.smoke conn with
          | Ok () -> Format.printf "serve smoke: solve/verify batch, cache hit, stats OK@."
          | Error reason ->
            Format.eprintf "serve smoke FAILED: %s@." reason;
            exit 1
        end
        else begin
          let family_name = family_to_string family in
          let header =
            [
              ("op", op);
              ("family", family_name);
              ("n", string_of_int n);
              ("degree", string_of_int degree);
              ("seed", string_of_int seed);
              ("solver", solver);
            ]
            @ (if stream then [ ("stream", "1") ] else [])
          in
          let resp =
            Lll_serve.Client.request conn { Lll_serve.Protocol.header; body = "" }
          in
          List.iter
            (fun m -> Format.printf "metrics: %s@." m.Lll_serve.Protocol.body)
            resp.Lll_serve.Client.metrics;
          let r = resp.Lll_serve.Client.result in
          Format.printf "result:";
          List.iter
            (fun (k, v) -> if k <> "frame" then Format.printf " %s=%s" k v)
            r.Lll_serve.Protocol.header;
          Format.printf "@.";
          if r.Lll_serve.Protocol.body <> "" then
            Format.printf "body: %s@." r.Lll_serve.Protocol.body;
          if Lll_serve.Protocol.get r "status" <> Some "ok" then exit 1
        end)
    end
  in
  let spawn =
    Arg.(value & flag
         & info [ "spawn" ]
             ~doc:"Launch a private server child over stdio instead of connecting to a \
                   socket.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Run the end-to-end smoke: mixed solve batch, identical repeat request \
                   asserting a cache hit with byte-identical output, verify, stats.")
  in
  let op =
    Arg.(value & opt string "solve"
         & info [ "op" ] ~docv:"OP" ~doc:"Request operation: solve, verify, fuzz, scenario, stats.")
  in
  let stream =
    Arg.(value & flag
         & info [ "stream" ] ~doc:"Stream per-round metrics frames for solve requests.")
  in
  let concurrency =
    Arg.(value & opt int 1
         & info [ "concurrency" ] ~docv:"K"
             ~doc:"With $(b,--smoke) and K>1: spawn a private socket server and hammer \
                   it with K concurrent client connections (the fleet smoke).")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains for the fleet smoke's private server.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a solve server over the frame protocol — connect to a socket or spawn \
             a private child — and print the demultiplexed response.")
    Term.(
      const run $ socket_arg $ spawn $ smoke $ op $ family_arg $ n_arg $ degree_arg
      $ seed_arg $ solver_arg $ stream $ concurrency $ workers)

(* ---- store: artifact-store maintenance ---- *)

let store_cmd =
  let module Corpus = Lll_scenario.Corpus in
  let require_dir dir =
    match dir with
    | Some d -> d
    | None ->
      Format.eprintf "store: pass --dir DIR@.";
      exit 2
  in
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "dir"; "store" ] ~docv:"DIR" ~doc:"Artifact store directory.")
  in
  let ls_cmd =
    let run dir =
      let store = Store.create ~dir:(require_dir dir) () in
      let entries = Store.ls store in
      List.iter
        (fun (e : Store.entry) ->
          Format.printf "%s %8d %s@." e.Store.e_digest e.Store.e_bytes
            (Option.value e.Store.e_spec ~default:"(blob artifact)"))
        entries;
      Format.printf "%d artifact(s)@." (List.length entries)
    in
    Cmd.v (Cmd.info "ls" ~doc:"List artifacts (digest, bytes, canonical spec).")
      Term.(const run $ dir_arg)
  in
  let verify_cmd =
    let run dir =
      let store = Store.create ~dir:(require_dir dir) () in
      let results = Store.verify store in
      let bad =
        List.filter_map
          (function
            | _, `Ok -> None
            | digest, `Corrupt msg ->
              Format.printf "CORRUPT %s: %s@." digest msg;
              Some digest)
          results
      in
      Format.printf "verified %d artifact(s): %d ok, %d corrupt@." (List.length results)
        (List.length results - List.length bad)
        (List.length bad);
      if bad <> [] then exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Decode every artifact through the checksummed load path; non-zero exit on \
               any corruption.")
      Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let run dir all =
      let store = Store.create ~dir:(require_dir dir) () in
      let r = Store.gc ~all store in
      Format.printf "gc: removed %d file(s) (%d bytes), kept %d artifact file(s)@."
        r.Store.gc_removed r.Store.gc_bytes r.Store.gc_kept
    in
    let all_arg =
      Arg.(value & flag
           & info [ "all" ]
               ~doc:"Also remove every artifact and sidecar, not just quarantined and \
                     temporary files.")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Remove quarantined (.bad) and stray temporary files; --all empties the \
               store. Artifacts mmapped by live readers stay readable until they close.")
      Term.(const run $ dir_arg $ all_arg)
  in
  let warm_cmd =
    let run dir families grid seeds =
      let dir = require_dir dir in
      let sink = Lll_local.Metrics.buffer () in
      let store = Store.create ~dir ~metrics:sink () in
      let families =
        match families with
        | None -> Corpus.all
        | Some spec ->
          String.split_on_char ',' spec
          |> List.filter (fun c -> c <> "")
          |> List.map (fun name ->
                 match Corpus.find (String.trim name) with
                 | Some f -> f
                 | None ->
                   Format.eprintf "store warm: unknown family %S@." name;
                   exit 2)
      in
      let ints what v default =
        match v with
        | None -> default
        | Some spec ->
          String.split_on_char ',' spec
          |> List.filter (fun c -> c <> "")
          |> List.map (fun c ->
                 match int_of_string_opt (String.trim c) with
                 | Some v -> v
                 | None ->
                   Format.eprintf "store warm: bad %s entry %S@." what c;
                   exit 2)
      in
      let grid = ints "--grid" grid Corpus.default_grid in
      let seeds = ints "--seeds" seeds Corpus.default_seeds in
      List.iter
        (fun (f : Corpus.family) ->
          List.iter
            (fun n ->
              List.iter
                (fun seed ->
                  let spec = f.Corpus.spec ~seed n in
                  let t0 = Lll_local.Metrics.now_ns () in
                  let _, source = Store.fetch store spec in
                  let ms = float_of_int (Lll_local.Metrics.now_ns () - t0) /. 1e6 in
                  Format.printf "%-18s n=%-6d seed=%d %-5s %7.1f ms  %s@." f.Corpus.name n
                    seed
                    (match source with `Mem -> "mem" | `Disk -> "disk" | `Built -> "built")
                    ms (Spec.digest spec))
                seeds)
            grid)
        families;
      (* girth-sampler cost per (n, girth), surfaced from the metrics
         sink the store records generation work into *)
      List.iter
        (fun (r : Lll_local.Metrics.round_record) ->
          if r.Lll_local.Metrics.phase = "girth-sample" then
            Format.printf
              "girth-sample: n=%d girth=%d restarts=%d swaps=%d reverts=%d rejects=%d \
               (%.1f ms)@."
              r.Lll_local.Metrics.state_words r.Lll_local.Metrics.round
              r.Lll_local.Metrics.stepped r.Lll_local.Metrics.messages
              r.Lll_local.Metrics.max_inbox r.Lll_local.Metrics.arena_occupancy
              (float_of_int r.Lll_local.Metrics.wall_ns /. 1e6))
        (Lll_local.Metrics.records sink);
      let st = Store.stats store in
      Format.printf "warm: %d built, %d disk hit(s), %d quarantined@." st.Store.st_built
        st.Store.st_disk_hits st.Store.st_quarantined
    in
    let families_arg =
      Arg.(value & opt (some string) None
           & info [ "families" ] ~docv:"NAMES" ~doc:"Comma-separated corpus family filter.")
    in
    let grid_arg =
      Arg.(value & opt (some string) None
           & info [ "grid" ] ~docv:"N,N,..." ~doc:"Sizes to materialize (default: corpus grid).")
    in
    let seeds_arg =
      Arg.(value & opt (some string) None
           & info [ "seeds" ] ~docv:"S,S,..." ~doc:"Seeds to materialize (default: corpus seeds).")
    in
    Cmd.v
      (Cmd.info "warm"
         ~doc:"Materialize scenario-corpus artifacts ahead of time, reporting per-instance \
               acquisition source/latency and girth-sampler work.")
      Term.(const run $ dir_arg $ families_arg $ grid_arg $ seeds_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Content-addressed instance artifact store maintenance: ls, verify, gc, warm.")
    [ ls_cmd; verify_cmd; gc_cmd; warm_cmd ]

(* ---- solvers ---- *)

let solvers_cmd =
  Cmd.v
    (Cmd.info "solvers" ~doc:"List the solver registry with capability envelopes.")
    Term.(const print_solver_list $ const ())

(* ---- surface ---- *)

let surface_cmd =
  let run steps =
    Format.printf "a\tb\tf@.";
    List.iter (fun (a, b, c) -> Format.printf "%.6f\t%.6f\t%.6f@." a b c)
      (Srep.surface_grid ~steps)
  in
  let steps = Arg.(value & opt int 32 & info [ "steps" ] ~docv:"K" ~doc:"Grid resolution.") in
  Cmd.v (Cmd.info "surface" ~doc:"Dump the Figure-1 surface f(a,b) as TSV.")
    Term.(const run $ steps)

(* ---- triple ---- *)

let triple_cmd =
  let run a b c =
    let t = (a, b, c) in
    Format.printf "triple (%g, %g, %g)@." a b c;
    Format.printf "representable: %b (violation %.3e)@." (Srep.mem t) (Srep.violation t);
    if Srep.mem t then begin
      let d = Srep.decompose t in
      Format.printf "witness: a1=%.6f a2=%.6f b1=%.6f b3=%.6f c2=%.6f c3=%.6f@." d.a1 d.a2 d.b1
        d.b3 d.c2 d.c3
    end
  in
  let pos i name = Arg.(required & pos i (some float) None & info [] ~docv:name) in
  Cmd.v
    (Cmd.info "triple" ~doc:"Check and decompose a triple against S_rep (Definition 3.3).")
    Term.(const run $ pos 0 "A" $ pos 1 "B" $ pos 2 "C")

let () =
  let doc = "Distributed Lovász Local Lemma at the sharp threshold (Brandt–Maus–Uitto, PODC'19)" in
  let default =
    Term.(
      ret
        (const (fun list_solvers ->
             if list_solvers then begin
               print_solver_list ();
               `Ok ()
             end
             else `Help (`Pager, None))
        $ list_solvers_arg))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default (Cmd.info "lll_cli" ~doc)
          [
            gen_cmd;
            convert_cmd;
            criteria_cmd;
            solve_cmd;
            solvers_cmd;
            surface_cmd;
            triple_cmd;
            fuzz_cmd;
            scenario_cmd;
            serve_cmd;
            store_cmd;
            client_cmd;
          ]))
