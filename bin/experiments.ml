(* Experiment harness: regenerates every figure and theorem-level claim of
   the paper (see DESIGN.md section 3 for the index and EXPERIMENTS.md for
   recorded outputs).

     F1  Figure 1: the S_rep boundary surface + convexity/incurvedness
     F2  Figure 2: the representable triple (1/4, 3/2, 1/10)
     T1  Theorem 1.1: rank-2 fixing below the threshold, adversarial orders
     T2  Theorem 1.3: rank-3 fixing below the threshold
     T3  Corollary 1.2: LOCAL rounds vs n (rank 2) vs Moser-Tardos
     T4  Corollary 1.4: LOCAL rounds vs n (rank 3)
     T5  Sharpness at p = 2^-d (sinkless orientation)
     T6  Application: hypergraph multi-orientation
     T7  Application: weak splitting
     T8  Criteria landscape
     T9  Moser-Tardos baseline statistics + witness trees
     T10 Conjecture 1.5: experimental rank-r fixing
     T11 Existence vs distributed complexity (Shearer's exact region)
     T12 Ablations (value-selection policies, MT selection rules)
     T13 The Omega(log* n) lower bound on shift graphs
     T14 Domain-parallel runtime + round metrics
     T15 The solver registry: every engine, one shared post-condition
     T16 Threshold-sharpness scenario corpus (round-count growth fits)

   Every solver run goes through the Solver registry (one shared
   [sweep] loop below); no experiment hand-wires an engine API.

   Usage: experiments [f1 f2 t1 ... t16]   (default: all)         *)

module Rat = Lll_num.Rat
module G = Lll_graph.Graph
module Gen = Lll_graph.Generators
module I = Lll_core.Instance
module Crit = Lll_core.Criteria
module Srep = Lll_core.Srep
module Syn = Lll_core.Synthetic
module Solver = Lll_core.Solver
module V = Lll_core.Verify
module MT = Lll_core.Moser_tardos (* witness-tree log analysis only (t9) *)
module Sink = Lll_apps.Sinkless
module HO = Lll_apps.Hyper_orientation
module WS = Lll_apps.Weak_splitting

let section id title =
  Format.printf "@.============================================================@.";
  Format.printf "%s  %s@." (String.uppercase_ascii id) title;
  Format.printf "============================================================@."

let shuffled ~seed m =
  let rng = Random.State.make [| seed |] in
  let o = Array.init m (fun i -> i) in
  Gen.shuffle rng o;
  o

(* The one registry loop every solver experiment goes through: [count]
   seeded instances of a family, solved by the named engine under a
   shuffled (adversarial) variable order, statistics read off the
   uniform report. *)
type sweep_stats = {
  succ : int;  (* runs whose assignment passed exact verification *)
  pstar_held : int;  (* runs whose engine-side P* check passed *)
  max_viol : float;  (* worst float-boundary violation; -inf if none *)
  rounds_avg : float;  (* mean LOCAL rounds; nan if not round-accounted *)
  detail_min : string -> float;  (* min over runs of a float detail key *)
  detail_sum : string -> int;  (* sum over runs of an int detail key *)
  d : int;
  r : int;
  ratio : Rat.t;  (* p * 2^d of the last instance *)
}

let sweep ?(order_mult = 17) ~solver ~count mk =
  let s = Solver.find_exn solver in
  let succ = ref 0 and pstar = ref 0 and viol = ref neg_infinity in
  let rounds = ref 0 and nrounds = ref 0 in
  let details = ref [] in
  let ratio = ref Rat.zero and d = ref 0 and r = ref 0 in
  for seed = 0 to count - 1 do
    let inst = mk seed in
    let rep = Crit.evaluate inst in
    ratio := Crit.threshold_ratio ~p:rep.Crit.p ~d:rep.Crit.d;
    d := rep.Crit.d;
    r := rep.Crit.r;
    let order = shuffled ~seed:(seed * order_mult) (I.num_vars inst) in
    let params = { Solver.default_params with seed; order = Some order } in
    let report = Solver.solve ~params s inst in
    if report.Solver.verify.V.ok then incr succ;
    (match report.Solver.outcome.Solver.pstar with Some true -> incr pstar | _ -> ());
    (match report.Solver.outcome.Solver.max_violation with
    | Some v when v > !viol -> viol := v
    | _ -> ());
    (match report.Solver.outcome.Solver.rounds with
    | Some k ->
      rounds := !rounds + k;
      incr nrounds
    | None -> ());
    details := report.Solver.outcome.Solver.detail :: !details
  done;
  let fold f init key =
    List.fold_left
      (fun acc kvs -> match List.assoc_opt key kvs with Some v -> f acc v | None -> acc)
      init !details
  in
  {
    succ = !succ;
    pstar_held = !pstar;
    max_viol = !viol;
    rounds_avg =
      (if !nrounds = 0 then nan else float_of_int !rounds /. float_of_int !nrounds);
    detail_min = (fun k -> fold (fun acc v -> Float.min acc (float_of_string v)) infinity k);
    detail_sum = (fun k -> fold (fun acc v -> acc + int_of_string v) 0 k);
    d = !d;
    r = !r;
    ratio = !ratio;
  }

(* single run through the registry, report + detail accessors *)
let solve1 ?params solver inst =
  let report = Solver.solve ?params (Solver.find_exn solver) inst in
  let det k = List.assoc k report.Solver.outcome.Solver.detail in
  (report, fun k -> int_of_string (det k))

(* ------------------------------------------------------------------ *)
(* F1: the S_rep surface (Figure 1)                                     *)
(* ------------------------------------------------------------------ *)

let f1 () =
  section "f1" "Figure 1: the boundary surface f(a,b) of S_rep";
  Format.printf "f(a,b) = 4 + (ab - 2a - 2b - sqrt(ab(4-a)(4-b)))/2 on a+b <= 4@.@.";
  let steps = 8 in
  Format.printf "%6s" "b\\a";
  for i = 0 to steps do
    Format.printf "%7.2f" (4. *. float_of_int i /. float_of_int steps)
  done;
  Format.printf "@.";
  for j = 0 to steps do
    let b = 4. *. float_of_int j /. float_of_int steps in
    Format.printf "%6.2f" b;
    for i = 0 to steps do
      let a = 4. *. float_of_int i /. float_of_int steps in
      if a +. b <= 4. +. 1e-9 then Format.printf "%7.3f" (Srep.f a (Float.min b (4. -. a)))
      else Format.printf "%7s" "-"
    done;
    Format.printf "@."
  done;
  (* convexity (Lemma 3.6): Hessian positive definite on a fine grid *)
  let grid = 200 in
  let checked = ref 0 and positive = ref 0 in
  for i = 1 to grid - 1 do
    for j = 1 to grid - 1 do
      let a = 4. *. float_of_int i /. float_of_int grid in
      let b = 4. *. float_of_int j /. float_of_int grid in
      if a +. b < 4. -. 1e-9 then begin
        incr checked;
        let faa, _, _ = Srep.hessian a b in
        if faa > 0. && Srep.hessian_determinant a b > 0. then incr positive
      end
    done
  done;
  Format.printf "@.convexity (Lemma 3.6): Hessian positive definite at %d/%d grid points@."
    !positive !checked;
  (* incurvedness (Lemma 3.7): random segments with both endpoints outside *)
  let rng = Random.State.make [| 2019 |] in
  let segments = 20_000 and bad = ref 0 in
  for _ = 1 to segments do
    let p () = (Random.State.float rng 4., Random.State.float rng 4., Random.State.float rng 4.) in
    let s = p () and s' = p () in
    if (not (Srep.mem ~eps:0. s)) && not (Srep.mem ~eps:0. s') then
      for i = 1 to 9 do
        let q = float_of_int i /. 10. in
        let (xa, ya, za) = s and (xb, yb, zb) = s' in
        let m =
          ( (q *. xa) +. ((1. -. q) *. xb),
            (q *. ya) +. ((1. -. q) *. yb),
            (q *. za) +. ((1. -. q) *. zb) )
        in
        if Srep.mem ~eps:(-1e-9) m then incr bad
      done
  done;
  Format.printf
    "incurvedness (Lemma 3.7): %d interior points of outside-outside segments fell into S_rep \
     (expected 0) over %d segments@."
    !bad segments

(* ------------------------------------------------------------------ *)
(* F2: Figure 2                                                         *)
(* ------------------------------------------------------------------ *)

let f2 () =
  section "f2" "Figure 2: the triple (1/4, 3/2, 1/10) is representable";
  let t = (0.25, 1.5, 0.1) in
  Format.printf "exact membership (rational, sqrt-free): %b@."
    (Srep.mem_rat (Rat.of_ints 1 4, Rat.of_ints 3 2, Rat.of_ints 1 10));
  let d = Srep.decompose t in
  Format.printf "witness: a1=%.6f a2=%.6f b1=%.6f b3=%.6f c2=%.6f c3=%.6f@." d.a1 d.a2 d.b1
    d.b3 d.c2 d.c3;
  let a, b, c = Srep.products d in
  Format.printf "products: a1*a2=%.6f (=1/4)  b1*b3=%.6f (=3/2)  c2*c3=%.6f (=1/10)@." a b c;
  Format.printf "edge constraints: a1+b1=%.6f  a2+c2=%.6f  b3+c3=%.6f (all <= 2): %b@."
    (d.a1 +. d.b1) (d.a2 +. d.c2) (d.b3 +. d.c3)
    (Srep.is_valid_decomposition d)

(* ------------------------------------------------------------------ *)
(* T1 / T2: the fixers below the threshold                              *)
(* ------------------------------------------------------------------ *)

let t1 () =
  section "t1" "Theorem 1.1: rank-2 deterministic fixing below p = 2^-d";
  Format.printf "%-28s %-8s %-10s %-12s %s@." "family" "d" "p*2^d" "success" "P* held";
  let run_family name mk count =
    let st = sweep ~solver:"fix2" ~count mk in
    Format.printf "%-28s %-8d %-10s %d/%-10d %d/%d@." name st.d (Rat.to_string st.ratio)
      st.succ count st.pstar_held count
  in
  run_family "ring n=40 arity=4" (fun seed -> Syn.ring ~seed ~n:40 ~arity:4 ()) 20;
  run_family "ring n=40 arity=8" (fun seed -> Syn.ring ~seed ~n:40 ~arity:8 ()) 10;
  run_family "relaxed sinkless rr3 n=20"
    (fun seed -> Sink.relaxed_instance (Gen.random_regular ~seed 20 3))
    10;
  run_family "relaxed sinkless rr4 n=20"
    (fun seed -> Sink.relaxed_instance (Gen.random_regular ~seed 20 4))
    10;
  run_family "property B ternary 4-unif"
    (fun seed -> Lll_apps.Property_b.relaxed_instance (Gen.random_regular_hypergraph ~seed 16 4 2))
    10;
  (* beyond random orders: an ACTIVE adversary hill-climbing on the
     fixer's certificate bound *)
  let module Adv = Lll_core.Adversary in
  let worst = ref Rat.zero and all_ok = ref true in
  for seed = 0 to 4 do
    let inst = Syn.ring ~seed ~n:20 ~arity:4 () in
    let attack = Adv.worst_order_rank2 ~seed ~steps:120 inst in
    if Rat.gt attack.Adv.bound !worst then worst := attack.Adv.bound;
    if not attack.Adv.succeeded then all_ok := false
  done;
  Format.printf
    "@.active adversary (hill climbing on the certificate, 5 instances x 120 steps):@.";
  Format.printf "  worst peak certificate reached: %s ~ %.3f (< 1), fixer always succeeded: %b@."
    (Rat.to_string !worst) (Rat.to_float !worst) !all_ok;
  Format.printf "@.expected: 100%% success, P* maintained throughout (paper: Theorem 1.1).@."

let t2 () =
  section "t2" "Theorem 1.3: rank-3 deterministic fixing below p = 2^-d";
  Format.printf "%-30s %-6s %-10s %-12s %-10s %s@." "family" "d" "p*2^d" "success" "P* held"
    "max S_rep violation";
  let run_family name mk count =
    let st = sweep ~order_mult:23 ~solver:"fix3" ~count mk in
    Format.printf "%-30s %-6d %-10s %d/%-10d %d/%-8d %.2e@." name st.d (Rat.to_string st.ratio)
      st.succ count st.pstar_held count st.max_viol
  in
  run_family "random rank3 delta2 n=18"
    (fun seed -> Syn.random ~seed ~n:18 ~rank:3 ~delta:2 ~arity:8 ())
    15;
  run_family "hyper-orientation delta3 n=15"
    (fun seed -> HO.instance (Gen.random_regular_hypergraph ~seed 15 3 3))
    8;
  run_family "weak splitting 16c n=16"
    (fun seed ->
      WS.instance ~nv:16 (Gen.random_biregular_bipartite ~seed ~nv:16 ~nu:16 ~deg_u:3 ~deg_v:3))
    8;
  Format.printf
    "@.expected: 100%% success, P* maintained, violations <= 0 up to float noise (Lemma 3.2).@."

(* ------------------------------------------------------------------ *)
(* T3 / T4: LOCAL round scaling                                         *)
(* ------------------------------------------------------------------ *)

let t3 () =
  section "t3" "Corollary 1.2: LOCAL rounds vs n at fixed d (rank 2)";
  Format.printf "%-8s %-10s %-10s %-10s %-14s %s@." "n" "coloring" "sweep" "total"
    "MT rounds(avg3)" "solved";
  List.iter
    (fun n ->
      let inst = Syn.ring ~seed:1 ~n ~arity:4 () in
      let report, det = solve1 "dist2" inst in
      let mt = sweep ~solver:"mt-par" ~count:3 (fun _ -> inst) in
      Format.printf "%-8d %-10d %-10d %-10d %-14.1f %b@." n (det "coloring_rounds")
        (det "sweep_rounds")
        (Option.value ~default:0 report.Solver.outcome.Solver.rounds)
        mt.rounds_avg report.Solver.ok)
    [ 32; 64; 128; 256; 512; 1024; 2048 ];
  Format.printf
    "@.expected: deterministic rounds flat in n past the Linial fixpoint (O(d + log* n));@.";
  Format.printf "MT rounds drift upward with log n.@."

let t4 () =
  section "t4" "Corollary 1.4: LOCAL rounds vs n at fixed d (rank 3)";
  Format.printf "%-8s %-6s %-10s %-10s %-10s %s@." "n" "d" "coloring" "sweep" "total" "solved";
  List.iter
    (fun n ->
      let h = Gen.random_regular_hypergraph ~seed:3 n 3 2 in
      let inst = HO.instance h in
      let report, det = solve1 "dist3" inst in
      Format.printf "%-8d %-6d %-10d %-10d %-10d %b@." n (I.dependency_degree inst)
        (det "coloring_rounds") (det "sweep_rounds")
        (Option.value ~default:0 report.Solver.outcome.Solver.rounds)
        report.Solver.ok)
    [ 30; 60; 120; 240; 480; 960; 1920 ];
  Format.printf
    "@.expected: reduction rounds grow only logarithmically below the Linial fixpoint of the@.";
  Format.printf
    "square graph and plateau past it — O(d^2 + log* n) overall, versus Theta(n) for a@.";
  Format.printf "naive class-by-class reduction.@."

(* ------------------------------------------------------------------ *)
(* T5: sharpness                                                        *)
(* ------------------------------------------------------------------ *)

let t5 () =
  section "t5" "Sharpness at p = 2^-d: sinkless orientation";
  let g = Gen.random_regular ~seed:5 24 3 in
  let at = Sink.instance g in
  let rep = Crit.evaluate at in
  Format.printf "classic sinkless orientation on a 3-regular graph:@.";
  Format.printf "  p = %s, d = %d, p*2^d = %s@." (Rat.to_string rep.Crit.p) rep.Crit.d
    (Rat.to_string (Crit.threshold_ratio ~p:rep.Crit.p ~d:rep.Crit.d));
  Format.printf "  exponential criterion p < 2^-d: %s@."
    (if List.assoc Crit.Exponential rep.Crit.satisfied then "holds" else "FAILS (exactly at)");
  let victim = 7 in
  let adv = Sink.adversarial_path_assignment g ~victim in
  Format.printf "  adversarial fixing run: node %d becomes a sink: %b@." victim
    (List.mem victim (V.occurring_events at adv));
  let below = Sink.relaxed_instance g in
  let rep_b = Crit.evaluate below in
  Format.printf "@.ternary relaxation (edges may stay unoriented):@.";
  Format.printf "  p = %s, p*2^d = %s, criterion: %s@." (Rat.to_string rep_b.Crit.p)
    (Rat.to_string (Crit.threshold_ratio ~p:rep_b.Crit.p ~d:rep_b.Crit.d))
    (if List.assoc Crit.Exponential rep_b.Crit.satisfied then "holds" else "fails");
  let ok = ref 0 in
  let orders = 20 in
  let fix2 = Solver.find_exn "fix2" in
  for seed = 0 to orders - 1 do
    let order = shuffled ~seed (I.num_vars below) in
    let params = { Solver.default_params with order = Some order } in
    let report = Solver.solve ~params fix2 below in
    if report.Solver.ok && Sink.is_sinkless g report.Solver.outcome.Solver.assignment then
      incr ok
  done;
  Format.printf "  deterministic fixing under %d adversarial orders: %d/%d sinkless@." orders !ok
    orders;
  Format.printf
    "@.expected: the phase shift of the paper — guarantee breaks exactly AT the threshold,@.";
  Format.printf "holds strictly below it.@."

(* ------------------------------------------------------------------ *)
(* T6 / T7: applications                                                *)
(* ------------------------------------------------------------------ *)

let t6 () =
  section "t6" "Application: rank-3 hypergraph multi-orientation";
  Format.printf "%-8s %-8s %-6s %-12s %-10s %-10s %-8s %s@." "nodes" "delta" "d" "p*2^d"
    "seq ok" "dist ok" "rounds" "valid";
  List.iter
    (fun (n, delta) ->
      let h = Gen.random_regular_hypergraph ~seed:11 n 3 delta in
      let inst = HO.instance h in
      let rep = Crit.evaluate inst in
      let seq, _ = solve1 "fix3" inst in
      let dist, _ = solve1 "dist3" inst in
      Format.printf "%-8d %-8d %-6d %-12.4f %-10b %-10b %-8d %b@." n delta rep.Crit.d
        (Rat.to_float (Crit.threshold_ratio ~p:rep.Crit.p ~d:rep.Crit.d))
        seq.Solver.ok dist.Solver.ok
        (Option.value ~default:0 dist.Solver.outcome.Solver.rounds)
        (HO.is_valid h dist.Solver.outcome.Solver.assignment))
    [ (12, 2); (24, 2); (15, 3); (30, 3) ];
  Format.printf "@.expected: all instances below threshold and solved deterministically.@."

let t7 () =
  section "t7" "Application: relaxed weak splitting (see >= 2 colors)";
  Format.printf "%-10s %-8s %-6s %-14s %-12s %s@." "colors" "deg_v" "d" "p*2^d" "criterion"
    "solved+valid";
  List.iter
    (fun colors ->
      let nv = 16 and nu = 16 in
      let adj = Gen.random_biregular_bipartite ~seed:13 ~nv ~nu ~deg_u:3 ~deg_v:3 in
      let params = { WS.colors; min_seen = 2 } in
      let inst = WS.instance ~params ~nv adj in
      let rep = Crit.evaluate inst in
      let below = List.assoc Crit.Exponential rep.Crit.satisfied in
      let solved =
        if below then begin
          let report, _ = solve1 "fix3" inst in
          report.Solver.ok
          && WS.is_valid ~params ~nv adj report.Solver.outcome.Solver.assignment
        end
        else false
      in
      Format.printf "%-10d %-8d %-6d %-14s %-12s %s@." colors 3 rep.Crit.d
        (Rat.to_string (Crit.threshold_ratio ~p:rep.Crit.p ~d:rep.Crit.d))
        (if below then "holds" else "FAILS")
        (if below then string_of_bool solved else "n/a (not attempted)"))
    [ 4; 8; 16; 32 ];
  Format.printf
    "@.expected: 16 colors (the paper's parameters) is comfortably below the threshold;@.";
  Format.printf "8 colors sits exactly AT it (p*2^d = 1) and is out of scope.@."

(* ------------------------------------------------------------------ *)
(* T8: criteria landscape                                               *)
(* ------------------------------------------------------------------ *)

let t8 () =
  section "t8" "Criteria landscape: which algorithm applies at p just below 2^-d";
  Format.printf "%-6s %-14s %-12s %-12s %-12s %-12s@." "d" "p" "ep(d+1)<1" "epd^2<1" "pd^8<=1"
    "p<2^-d";
  for d = 2 to 10 do
    (* p one notch below the threshold *)
    let p = Rat.sub (Rat.pow2 (-d)) (Rat.pow2 (-(d + 10))) in
    let h c = if Crit.holds c ~p ~d then "holds" else "-" in
    Format.printf "%-6d %-14s %-12s %-12s %-12s %-12s@." d (Rat.to_string p)
      (h Crit.Shattering) (h Crit.Polynomial_epd2) (h Crit.Polynomial_d8) (h Crit.Exponential)
  done;
  Format.printf
    "@.expected: the exponential criterion implies the polynomial ones for all large d —@.";
  Format.printf
    "the paper's regime is the strong end of the spectrum, yet its algorithm is the@.";
  Format.printf "only deterministic O(poly d + log* n) one.@."

(* ------------------------------------------------------------------ *)
(* T9: Moser-Tardos baseline                                            *)
(* ------------------------------------------------------------------ *)

let t9 () =
  section "t9" "Moser-Tardos baseline statistics";
  Format.printf "sequential resamplings on below-threshold rings (avg over 5 seeds):@.";
  Format.printf "%-8s %-14s %-14s@." "n" "resamplings" "variables";
  List.iter
    (fun n ->
      let inst = Syn.ring ~seed:2 ~n ~arity:4 () in
      let st = sweep ~solver:"mt-seq" ~count:5 (fun _ -> inst) in
      (* [MT10]: expected total resamplings is O(m) under ep(d+1) < 1 *)
      Format.printf "%-8d %-14.1f %-14d@." n
        (float_of_int (st.detail_sum "resamplings") /. 5.)
        (I.num_vars inst))
    [ 32; 64; 128; 256 ];
  Format.printf "@.parallel MT rounds on AT-threshold sinkless orientation (avg over 5 seeds):@.";
  Format.printf "%-8s %-12s@." "n" "rounds";
  List.iter
    (fun n ->
      let g = Gen.random_regular ~seed:3 n 3 in
      let inst = Sink.instance g in
      let st = sweep ~solver:"mt-par" ~count:5 (fun _ -> inst) in
      Format.printf "%-8d %-12.1f@." n st.rounds_avg)
    [ 16; 32; 64; 128; 256; 512 ];
  Format.printf
    "@.expected: parallel rounds grow (slowly) with n at the threshold, in contrast to the@.";
  Format.printf "flat deterministic rounds of T3/T4 below it.@.";
  (* witness tree size distribution: the MT analysis made visible *)
  Format.printf "@.witness tree sizes over an at-threshold run (the [MT10] accounting):@.";
  let inst = Syn.ring ~position:Syn.At_threshold ~seed:12 ~n:64 ~arity:4 () in
  let module W = Lll_core.Witness in
  let _, _, log = MT.solve_sequential_log ~seed:4 inst in
  let hist = W.size_histogram inst log in
  Format.printf "%-8s %s@." "size" "count";
  List.iter (fun (sz, c) -> Format.printf "%-8d %d@." sz c) hist;
  Format.printf
    "expected: geometrically decaying counts — the empirical face of the MT convergence@.";
  Format.printf "bound (each resampling is charged to a distinct witness tree).@."

(* ------------------------------------------------------------------ *)
(* T10: Conjecture 1.5 — experimental rank-r fixing                     *)
(* ------------------------------------------------------------------ *)

let t10 () =
  section "t10" "Conjecture 1.5: experimental rank-r fixing (r >= 4, NO proven guarantee)";
  Format.printf "%-28s %-4s %-4s %-12s %-10s %-12s %-12s %s@." "family" "r" "d" "p*2^d" "success"
    "min slack" "infeasible" "P* held";
  let run_family name mk count =
    let st = sweep ~order_mult:29 ~solver:"fixr" ~count mk in
    Format.printf "%-28s %-4d %-4d %-12s %d/%-8d %-12.2e %-12d %d/%d@." name st.r st.d
      (Rat.to_string st.ratio) st.succ count
      (st.detail_min "min_slack")
      (st.detail_sum "infeasible_steps")
      st.pstar_held count
  in
  run_family "rank3 delta2 arity8 n=18"
    (fun seed -> Syn.random ~seed ~n:18 ~rank:3 ~delta:2 ~arity:8 ())
    10;
  run_family "rank4 delta2 arity16 n=16"
    (fun seed -> Syn.random ~seed ~n:16 ~rank:4 ~delta:2 ~arity:16 ())
    10;
  run_family "rank5 delta2 arity32 n=20"
    (fun seed -> Syn.random ~seed ~n:20 ~rank:5 ~delta:2 ~arity:32 ())
    6;
  Format.printf
    "@.expected if Conjecture 1.5 holds: every step finds a representable value (min slack@.";
  Format.printf
    ">= 0 up to solver tolerance, zero infeasible steps) and all instances are solved,@.";
  Format.printf "as the paper proves for r <= 3 and conjectures for all r.@."

(* ------------------------------------------------------------------ *)
(* T11: Shearer's exact region vs the distributed criteria              *)
(* ------------------------------------------------------------------ *)

let t11 () =
  section "t11" "Existence vs distributed complexity: Shearer's exact region";
  Format.printf
    "Shearer's criterion characterises exactly when the LLL guarantees a solution EXISTS;@.";
  Format.printf
    "the paper shows that finding one FAST (deterministically, locally) needs p < 2^-d.@.@.";
  Format.printf "%-34s %-10s %-12s %-14s %s@." "instance" "p*2^d" "in Shearer" "p < 2^-d"
    "meaning";
  let row name inst meaning =
    let rep = Crit.evaluate inst in
    Format.printf "%-34s %-10s %-12b %-14b %s@." name
      (Rat.to_string (Crit.threshold_ratio ~p:rep.Crit.p ~d:rep.Crit.d))
      (Crit.shearer_holds inst)
      (List.assoc Crit.Exponential rep.Crit.satisfied)
      meaning
  in
  row "ring n=12 (below)" (Syn.ring ~seed:1 ~n:12 ~arity:4 ()) "solvable + fast";
  row "ring n=12 (at threshold)"
    (Syn.ring ~position:Syn.At_threshold ~seed:1 ~n:12 ~arity:4 ())
    "no fast guarantee";
  row "sinkless orientation C5" (Sink.instance (Gen.cycle 5)) "exists, yet hard";
  row "sinkless orientation C12" (Sink.instance (Gen.cycle 12)) "exists, yet hard";
  row "relaxed sinkless C12" (Sink.relaxed_instance (Gen.cycle 12)) "solvable + fast";
  let pb = Gen.random_regular_hypergraph ~seed:2 16 4 2 in
  row "property B (binary, 4-unif)" (Lll_apps.Property_b.instance pb) "exists, yet hard";
  row "property B (abstain color)" (Lll_apps.Property_b.relaxed_instance pb) "solvable + fast";
  Format.printf
    "@.expected: at-threshold sinkless orientation lies strictly INSIDE Shearer's region@.";
  Format.printf
    "(solutions exist — orient the cycle consistently) while failing the paper's@.";
  Format.printf
    "criterion: the threshold is about distributed COMPLEXITY, not existence.@."

(* ------------------------------------------------------------------ *)
(* T12: ablations — value-selection policies, MT selection rules        *)
(* ------------------------------------------------------------------ *)

let t12 () =
  section "t12" "Ablations: value selection policies and MT selection rules";
  Format.printf "rank-2 fixer policies on rings (20 seeds):@.";
  Format.printf "%-26s %-12s %s@." "policy" "success" "worst headroom (budget - score)";
  List.iter
    (fun (solver, name) ->
      let st = sweep ~solver ~count:20 (fun seed -> Syn.ring ~seed ~n:30 ~arity:4 ()) in
      Format.printf "%-26s %d/%-10d %.4f@." name st.succ 20 (st.detail_min "worst_headroom"))
    [ ("fix2", "min-score"); ("fix2-first", "first-within-budget") ];
  Format.printf "@.rank-3 fixer policies on random rank-3 instances (10 seeds):@.";
  Format.printf "%-26s %-12s %s@." "policy" "success" "max S_rep violation";
  List.iter
    (fun (solver, name) ->
      let st =
        sweep ~solver ~count:10 (fun seed -> Syn.random ~seed ~n:15 ~rank:3 ~delta:2 ~arity:8 ())
      in
      Format.printf "%-26s %d/%-10d %.2e@." name st.succ 10 st.max_viol)
    [ ("fix3", "min-violation"); ("fix3-first", "first-feasible") ];
  Format.printf "@.Moser-Tardos selection rules on below-threshold rings (5 seeds each):@.";
  Format.printf "%-8s %-22s %-22s@." "n" "id-minima rounds(avg)" "resample-all rounds(avg)";
  List.iter
    (fun n ->
      let inst = Syn.ring ~seed:3 ~n ~arity:4 () in
      let avg solver = (sweep ~solver ~count:5 (fun _ -> inst)).rounds_avg in
      Format.printf "%-8d %-22.1f %-22.1f@." n (avg "mt-par") (avg "mt-par-all"))
    [ 32; 128; 512 ];
  Format.printf
    "@.expected: all policies succeed (both are sound by the theorems); the MT variants@.";
  Format.printf "differ only in constants on these instances.@."

(* ------------------------------------------------------------------ *)
(* T13: the Omega(log* n) side, concretely                              *)
(* ------------------------------------------------------------------ *)

let t13 () =
  section "t13" "The Omega(log* n) lower bound, machine-checked on shift graphs";
  Format.printf
    "A t-round deterministic coloring algorithm on directed paths with ids from [m] is@.";
  Format.printf
    "exactly a proper coloring of the shift graph S(m, k) on k-id windows; its chromatic@.";
  Format.printf
    "number grows like an iterated logarithm of m — so o(log* n) rounds cannot color,@.";
  Format.printf "making the paper's O(poly d + log* n) upper bounds optimal in n.@.@.";
  let module SG = Lll_graph.Shift_graph in
  Format.printf "%-8s %-10s %-14s@." "m" "window k" "chi(S(m,k)) (exact)";
  List.iter
    (fun (m, k) ->
      match SG.chromatic_number ~budget:5_000_000 ~m ~k () with
      | Some chi -> Format.printf "%-8d %-10d %d@." m k chi
      | None -> Format.printf "%-8d %-10d (search budget exhausted)@." m k)
    [ (3, 2); (4, 2); (5, 2); (6, 2); (4, 3); (5, 3) ];
  (match SG.threshold_universe ~k:2 ~colors:3 ~max_m:8 () with
  | Some m ->
    Format.printf
      "@.certified: with ids from a universe of size >= %d, NO single-window algorithm@." m;
    Format.printf "3-colors directed paths — the concrete base case of the log* argument.@."
  | None -> Format.printf "@.threshold search undecided within budget.@.");
  Format.printf
    "@.matching upper bound: Cole-Vishkin 3-colors rings in O(log* n) rounds (see the@.";
  Format.printf "local_algorithms example: 8 rounds at n=10, 10 rounds at n=100000).@."

(* ------------------------------------------------------------------ *)
(* T14: the domain-parallel runtime and its round-level metrics         *)
(* ------------------------------------------------------------------ *)

let t14 () =
  section "t14" "Domain-parallel LOCAL runtime + round-level metrics";
  let module Net = Lll_local.Network in
  let module RT = Lll_local.Runtime in
  let module Par = Lll_local.Par in
  let module M = Lll_local.Metrics in
  Format.printf "machine: %d recommended domain(s); runtime default %d@.@." (Par.recommended ())
    (Par.default_domains ());
  (* per-round metrics of a full message-passing rank-3 solve *)
  let inst = HO.instance (Gen.random_regular_hypergraph ~seed:3 30 3 2) in
  let sink = M.buffer () in
  let report, _ =
    solve1 ~params:{ Solver.default_params with metrics = sink } "mp3" inst
  in
  let recs = M.records sink in
  Format.printf "message-passing rank-3 solve: ok=%b, %d LOCAL rounds, %d round records@.@."
    report.Solver.ok
    (Option.value ~default:0 report.Solver.outcome.Solver.rounds)
    (List.length recs);
  let phases = List.sort_uniq compare (List.map (fun rc -> rc.M.phase) recs) in
  Format.printf "%-18s %-8s %-12s %-14s %s@." "phase" "rounds" "wall_ms" "mean stepped" "final halted";
  List.iter
    (fun p ->
      let of_p = List.filter (fun rc -> rc.M.phase = p) recs in
      let k = List.length of_p in
      let stepped = List.fold_left (fun acc rc -> acc + rc.M.stepped) 0 of_p in
      let last = List.nth of_p (k - 1) in
      Format.printf "%-18s %-8d %-12.2f %-14.1f %.3f@." p k
        (float_of_int (M.total_wall_ns of_p) /. 1e6)
        (float_of_int stepped /. float_of_int k)
        last.M.halted_fraction)
    phases;
  Format.printf "@.JSON dump (the lll_cli --metrics format), first rounds of each phase:@.";
  let first_of p = List.find (fun rc -> rc.M.phase = p) recs in
  print_string (M.to_json (List.map first_of phases));
  (* 1-domain vs N-domain round throughput on a large flood workload *)
  let n = 60_000 in
  let net = Net.create (Gen.random_regular ~seed:7 n 4) in
  let flood domains =
    let t0 = M.now_ns () in
    let _, stats =
      RT.run_full_info ~domains net ~init:(fun v -> v)
        ~step:(fun ~round ~me:_ s nbrs ->
          (List.fold_left (fun acc (_, x) -> max acc x) s nbrs, round + 1 >= 4))
    in
    (stats.RT.rounds, float_of_int (M.now_ns () - t0) /. 1e6)
  in
  let domains_n = max 2 (Par.recommended ()) in
  let r1, ms1 = flood 1 in
  let rn, msn = flood domains_n in
  Format.printf "@.flood on a %d-node 4-regular graph (%d rounds):@." n r1;
  Format.printf "  1 domain : %8.2f ms@." ms1;
  Format.printf "  %d domains: %8.2f ms  (speedup %.2fx; > 1 requires a multicore host)@."
    domains_n msn (ms1 /. msn);
  ignore rn;
  Format.printf
    "@.expected: identical results for any domain count (asserted by the differential@.";
  Format.printf "suite in test/test_runtime_par.ml); speedup tracks the physical core count.@."

(* ------------------------------------------------------------------ *)
(* T15: the solver registry itself                                      *)
(* ------------------------------------------------------------------ *)

let t15 () =
  section "t15" "The solver registry: every applicable engine, one shared post-condition";
  let instances =
    [
      ("ring n=24 arity=4 (rank 2)", Syn.ring ~seed:1 ~n:24 ~arity:4 ());
      ("random rank3 delta2 n=18", Syn.random ~seed:1 ~n:18 ~rank:3 ~delta:2 ~arity:8 ());
      ("random rank4 delta2 n=16", Syn.random ~seed:1 ~n:16 ~rank:4 ~delta:2 ~arity:16 ());
    ]
  in
  List.iter
    (fun (name, inst) ->
      Format.printf "@.%s — %a@." name I.pp inst;
      Format.printf "%-14s %-32s %-6s %s@." "solver" "capabilities" "ok" "guaranteed";
      List.iter
        (fun s ->
          match Solver.solve s inst with
          | report ->
            Format.printf "%-14s %-32s %-6b %b@." (Solver.name s)
              (Format.asprintf "%a" Solver.pp_caps (Solver.caps s))
              report.Solver.ok (Solver.guarantees s inst)
          | exception e ->
            Format.printf "%-14s %-32s %-6s %b  (%s)@." (Solver.name s)
              (Format.asprintf "%a" Solver.pp_caps (Solver.caps s))
              "raise" (Solver.guarantees s inst) (Printexc.to_string e))
        (Solver.applicable_to inst))
    instances;
  Format.printf
    "@.expected: ok = true for every engine whose guarantee predicate holds on the@.";
  Format.printf
    "instance; engines run outside their criterion (e.g. union-bound on a large ring)@.";
  Format.printf "are best-effort and may legitimately report false.@."

(* ------------------------------------------------------------------ *)
(* T16: the threshold-sharpness scenario corpus                         *)
(* ------------------------------------------------------------------ *)

let t16 () =
  section "t16"
    "Threshold sharpness as an experiment: round counts across the scenario corpus";
  Lll_apps.App_engines.ensure_registered ();
  (* a larger grid than the CI baselines: the growth separation gets
     clearer with every doubling *)
  let grid = [ 24; 48; 96; 192 ] in
  let ms = Lll_scenario.Run.measure ~grid () in
  let fits = Lll_scenario.Run.fit_growth ms in
  Format.printf "grid n = %s, seeds = %s@."
    (String.concat ", " (List.map string_of_int grid))
    (String.concat ", " (List.map string_of_int Lll_scenario.Corpus.default_seeds));
  Format.printf "%a@." Lll_scenario.Run.pp_fits fits;
  (* parallel efficiency of the color-class fixer sweeps: the widest
     same-color class each engine fanned out at the largest size. The
     width bounds the useful domain count for that sweep (efficiency =
     width / domains once domains exceed the class size), and it is
     recorded identically at any --domains by the determinism
     contract. *)
  let nmax = List.fold_left max 0 grid in
  let widths = Hashtbl.create 16 in
  List.iter
    (fun (m : Lll_scenario.Run.measurement) ->
      if m.Lll_scenario.Run.n = nmax && m.Lll_scenario.Run.max_sweep_width > 0 then begin
        let key = (m.Lll_scenario.Run.family, m.Lll_scenario.Run.engine) in
        let cur = try Hashtbl.find widths key with Not_found -> 0 in
        Hashtbl.replace widths key (max cur m.Lll_scenario.Run.max_sweep_width)
      end)
    ms;
  let rows =
    Hashtbl.fold (fun (fam, eng) w acc -> (fam, eng, w) :: acc) widths []
    |> List.sort compare
  in
  if rows <> [] then begin
    Format.printf "@.fixer-sweep parallelism at n = %d (max color-class width; a domain@."
      nmax;
    Format.printf "pool up to that size stays fully busy during the widest sweep):@.";
    Format.printf "%-18s %-18s %11s@." "family" "engine" "max width";
    List.iter
      (fun (fam, eng, w) -> Format.printf "%-18s %-18s %11d@." fam eng w)
      rows
  end;
  Format.printf
    "@.expected: every *-below family keeps an O(1)/flat series (the relaxed problem is@.";
  Format.printf
    "constant-round solvable), while the *-at families' engines track the log log n /@.";
  Format.printf
    "log n envelopes — the sharp threshold of the paper as a measured table. CI pins@.";
  Format.printf "these numbers via `lll_cli scenario --check` (see DESIGN.md section 10).@."

(* ------------------------------------------------------------------ *)
(* driver                                                               *)
(* ------------------------------------------------------------------ *)

let all : (string * (unit -> unit)) list =
  [
    ("f1", f1); ("f2", f2); ("t1", t1); ("t2", t2); ("t3", t3); ("t4", t4); ("t5", t5);
    ("t6", t6); ("t7", t7); ("t8", t8); ("t9", t9); ("t10", t10); ("t11", t11); ("t12", t12);
    ("t13", t13); ("t14", t14); ("t15", t15); ("t16", t16);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> List.map String.lowercase_ascii ids
    | _ -> List.map fst all
  in
  List.iter
    (fun id ->
      match List.assoc_opt id all with
      | Some f -> f ()
      | None ->
        Format.printf "unknown experiment %S; available: %s@." id
          (String.concat " " (List.map fst all));
        exit 1)
    requested
